//! The threaded serving twin: real threads, real queues, wall-clock
//! pacing — with the discrete-event engine as its oracle.
//!
//! This is the **one** module in the workspace allowed to read the
//! wall clock (`[rule.wallclock] sanctioned` in `lint.toml`; see
//! `docs/LIVE_SERVING.md` for the full justification). Everything it
//! does with that clock is bounded by a contract:
//!
//! * A **front-door thread** paces the seeded trace onto wall-clock
//!   time (`time_scale` wall-ms per simulated ms), runs placement and
//!   admission control per request exactly as the engine's online
//!   admission does, and records every *realized* admission instant.
//! * **Shard worker threads** each own their executor, plan cache
//!   (the engine's own [`PlanCache`] type) and per-network FIFO
//!   queues, fed over MPSC channels; batches form by the same
//!   [`BatchPolicy`] the engine consults, execution occupies the
//!   worker for the *modeled* service time scaled to wall time, and
//!   all recorded costs (service, compile) are the modeled values —
//!   the wall clock enters only through pacing and start/completion
//!   instants.
//! * A modeled [`TransportModel`] charges per-hop latency/bandwidth
//!   to request and response envelopes; the engine sees no transport,
//!   so live latencies exceed replay latencies by at most one round
//!   trip plus scheduler jitter.
//!
//! The oracle contract (enforced by `serve/oracle.rs` and
//! `tests/serve_live.rs`): replaying the recorded realized trace
//! through the discrete-event engine reproduces the live run's
//! *discrete outcomes* — served/rejected counts and id sets, per-shard
//! routing, per-(shard, network) batch partition — exactly, for
//! timing-robust configurations (trace-deterministic placements such
//! as [`RoundRobin`](super::RoundRobin) /
//! [`PlatformAffinity`](super::PlatformAffinity), and policies whose
//! partition is timing-independent: [`Immediate`](super::Immediate),
//! [`SizeK`](super::SizeK)). Load-adaptive placements
//! (e.g. [`LeastBacklog`](super::LeastBacklog)) legitimately read
//! racy live state and are checked by conservation, not exactness.
//! Latency statistics get tolerance bands, never equality.
//!
//! Live fault support is deliberately the timing-only subset:
//! [`FaultKind::Degrade`] and [`FaultKind::StallCompile`] windows
//! stretch time without changing any discrete outcome. Crash and
//! transient-compile-fail faults reroute work and are engine-only —
//! [`LiveServer::new`] rejects them.

use super::engine::PlanCache;
use super::fault::{FaultEvent, FaultKind, ShardFaultStats};
use super::load::Request;
use super::metrics::PlanCacheStats;
use super::placement::{ClusterView, Placement};
use super::policy::{BatchPolicy, PolicyDecision};
use super::transport::TransportModel;
use super::{BatchRecord, EngineConfig, ServeCluster, ServeRun, ServedRequest, ShardReport};
use crate::backend::RuntimeError;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{Receiver, RecvTimeoutError, Sender, TryRecvError};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How the front door issues requests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LiveMode {
    /// Pace the trace's arrival instants onto wall time (scaled).
    /// Arrivals never react to completions — the same pressure the
    /// open-loop generator models.
    OpenLoop,
    /// Issue-on-completion under a concurrency window: the next
    /// request is admitted as soon as fewer than `window` admitted
    /// requests are outstanding. Trace arrival instants are ignored;
    /// realized instants are recorded as always. The window must keep
    /// a size-triggered policy fed (`window >= k × shards` for
    /// `SizeK`), or the run deadlocks until the watchdog trips.
    ClosedLoop {
        /// Maximum admitted-but-uncompleted requests.
        window: usize,
    },
}

/// Knobs specific to the live twin (everything else — cache budget,
/// compile cost, faults — comes from the shared [`EngineConfig`]).
#[derive(Debug, Clone, Copy)]
pub struct LiveConfig {
    /// Wall milliseconds per simulated millisecond. `0.02` replays a
    /// 1-second simulated horizon in 20 wall-ms. Must be positive and
    /// finite.
    pub time_scale: f64,
    /// Modeled inter-node transport applied to request/response
    /// envelopes.
    pub transport: TransportModel,
    /// Open- or closed-loop drive.
    pub mode: LiveMode,
    /// Admission stamps are floored to a multiple of this quantum (in
    /// simulated ms; `0.0` = full resolution). A coarse quantum makes
    /// simultaneous admissions — identical recorded stamps — routine
    /// rather than astronomically unlikely, which is exactly what the
    /// oracle's tie-break contract is tested against.
    pub stamp_quantum_ms: f64,
}

impl LiveConfig {
    /// A config with the given time scale, no transport, open-loop
    /// drive and full stamp resolution.
    #[must_use]
    pub fn new(time_scale: f64) -> Self {
        LiveConfig {
            time_scale,
            transport: TransportModel::none(),
            mode: LiveMode::OpenLoop,
            stamp_quantum_ms: 0.0,
        }
    }

    /// This config with a transport model.
    #[must_use]
    pub fn with_transport(mut self, transport: TransportModel) -> Self {
        self.transport = transport;
        self
    }

    /// This config with a drive mode.
    #[must_use]
    pub fn with_mode(mut self, mode: LiveMode) -> Self {
        self.mode = mode;
        self
    }

    /// This config with a stamp quantum.
    #[must_use]
    pub fn with_stamp_quantum(mut self, quantum_ms: f64) -> Self {
        self.stamp_quantum_ms = quantum_ms;
        self
    }
}

/// Everything a live run produced.
#[derive(Debug)]
pub struct LiveReport {
    /// Every admission the front door performed, in admission order,
    /// with *realized* (wall-clock-derived, scaled to simulated ms)
    /// arrival stamps and deadlines re-offset from them. Sorted and
    /// replayable through [`ServeSim`](super::ServeSim) — rejected
    /// requests are included, since the replay re-derives rejection.
    pub realized_trace: Vec<Request>,
    /// The run in the engine's own result shape: per-shard reports
    /// (modeled costs, live instants), rejections, and empty
    /// shed/failed buckets (the live twin supports neither).
    pub run: ServeRun,
    /// Wall-clock milliseconds the whole run took (informational —
    /// never asserted against; CI runs on noisy machines).
    pub wall_elapsed_ms: f64,
    /// The live config the run used.
    pub config: LiveConfig,
}

/// Why a live run failed.
#[derive(Debug)]
pub enum LiveError {
    /// A backend rejected a batched-plan compile mid-run.
    Runtime(RuntimeError),
    /// A shard worker died or wedged (details inside), or the closed
    /// loop's completion watchdog tripped.
    Worker {
        /// The shard whose worker failed (`usize::MAX` = front door).
        shard: usize,
        /// Human-readable failure description.
        detail: String,
    },
}

impl std::fmt::Display for LiveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LiveError::Runtime(e) => write!(f, "live serve: {e}"),
            LiveError::Worker { shard, detail } if *shard == usize::MAX => {
                write!(f, "live serve front door: {detail}")
            }
            LiveError::Worker { shard, detail } => {
                write!(f, "live serve shard {shard}: {detail}")
            }
        }
    }
}

impl std::error::Error for LiveError {}

impl From<RuntimeError> for LiveError {
    fn from(e: RuntimeError) -> Self {
        LiveError::Runtime(e)
    }
}

/// One admission envelope, front door → shard worker.
#[derive(Debug, Clone, Copy)]
struct Admit {
    /// The realized request (arrival = admission stamp).
    request: Request,
    /// Earliest simulated instant the shard may batch it: the
    /// admission stamp plus the modeled request-hop delay.
    available_ms: f64,
}

/// The threaded serving twin over a compiled cluster.
///
/// Construction validates the same invariants as
/// [`ServeSim::with_cluster`](super::ServeSim::with_cluster) plus the
/// live-support envelope; [`LiveServer::run`] spawns the shard workers
/// and drives the front door on the calling thread.
#[derive(Debug)]
pub struct LiveServer {
    cluster: Arc<ServeCluster>,
    policy: Arc<dyn BatchPolicy>,
    trace: Vec<Request>,
    engine: EngineConfig,
    live: LiveConfig,
}

impl LiveServer {
    /// Builds a live server over an already-compiled cluster.
    ///
    /// # Panics
    ///
    /// Panics if the trace is unsorted or names an unknown network, if
    /// the live config is invalid (`time_scale` must be positive and
    /// finite, the transport and stamp quantum well-formed, a closed
    /// loop's window non-zero), or if the engine config asks for
    /// features the live twin does not implement: hedging, shedding,
    /// preplaced admission, or fault kinds other than
    /// [`FaultKind::Degrade`] / [`FaultKind::StallCompile`].
    #[must_use]
    pub fn new(
        cluster: Arc<ServeCluster>,
        policy: Arc<dyn BatchPolicy>,
        trace: &[Request],
        engine: EngineConfig,
        live: LiveConfig,
    ) -> Self {
        assert!(
            trace.windows(2).all(|w| w[0].arrival_ms <= w[1].arrival_ms),
            "trace must be sorted by arrival_ms"
        );
        for request in trace {
            assert!(
                request.network < cluster.networks().len(),
                "request {} targets unknown network {}",
                request.id,
                request.network
            );
        }
        assert!(
            live.time_scale > 0.0 && live.time_scale.is_finite(),
            "time_scale must be positive and finite, got {}",
            live.time_scale
        );
        assert!(live.transport.is_valid(), "invalid transport model");
        assert!(
            live.stamp_quantum_ms >= 0.0 && live.stamp_quantum_ms.is_finite(),
            "stamp quantum must be non-negative and finite"
        );
        if let LiveMode::ClosedLoop { window } = live.mode {
            assert!(window > 0, "closed-loop window must be non-zero");
        }
        assert!(
            engine.admission == super::Admission::Online,
            "the live twin is online admission only"
        );
        assert!(
            engine.hedge.is_none() && engine.shed.is_none(),
            "hedging and shedding are engine-only features"
        );
        assert!(
            engine.preempt.is_none() && engine.scale.is_none(),
            "preemption and autoscaling are engine-only features \
             (reconfiguration is allowed: it is trace-deterministic)"
        );
        for event in engine.faults.events() {
            assert!(
                matches!(
                    event.kind,
                    FaultKind::Degrade { .. } | FaultKind::StallCompile { .. }
                ),
                "live faults are the timing-only subset (degrade/stall); {:?} is engine-only",
                event.kind
            );
        }
        LiveServer {
            cluster,
            policy,
            trace: trace.to_vec(),
            engine,
            live,
        }
    }

    /// The compiled cluster this server runs over.
    #[must_use]
    pub fn cluster(&self) -> &Arc<ServeCluster> {
        &self.cluster
    }

    /// The engine configuration shared with the oracle replay.
    #[must_use]
    pub fn engine_config(&self) -> &EngineConfig {
        &self.engine
    }

    /// Runs the live twin: spawns one worker thread per shard, drives
    /// the front door on the calling thread, and assembles the
    /// engine-shaped result.
    ///
    /// `placement` is consulted once per request, in admission order,
    /// on the front-door thread — the same discipline as the engine's
    /// online admission.
    ///
    /// # Errors
    ///
    /// [`LiveError::Runtime`] when a backend rejects a batched-plan
    /// compile; [`LiveError::Worker`] when a worker thread dies or a
    /// policy wedges a queue.
    pub fn run(&self, placement: &mut dyn Placement) -> Result<LiveReport, LiveError> {
        let shard_count = self.cluster.shard_count();
        let num_networks = self.cluster.networks().len();
        let scale = self.live.time_scale;

        // Live-view gauges, shared lock-free with the front door.
        let queued: Vec<AtomicUsize> = (0..shard_count).map(|_| AtomicUsize::new(0)).collect();
        let in_flight: Vec<AtomicUsize> = (0..shard_count).map(|_| AtomicUsize::new(0)).collect();
        let resident: Vec<AtomicU64> = (0..shard_count).map(|_| AtomicU64::new(0)).collect();

        // Per-shard fault windows (already validated as degrade/stall).
        let faults: Vec<Vec<FaultEvent>> = (0..shard_count)
            .map(|shard| {
                self.engine
                    .faults
                    .events()
                    .iter()
                    .filter(|e| e.shard == shard)
                    .copied()
                    .collect()
            })
            .collect();

        let mut to_shard: Vec<Sender<Admit>> = Vec::with_capacity(shard_count);
        let mut from_door: Vec<Receiver<Admit>> = Vec::with_capacity(shard_count);
        for _ in 0..shard_count {
            let (tx, rx) = std::sync::mpsc::channel();
            to_shard.push(tx);
            from_door.push(rx);
        }
        let (done_tx, done_rx) = std::sync::mpsc::channel::<u64>();
        let closed_loop = matches!(self.live.mode, LiveMode::ClosedLoop { .. });

        let anchor = Instant::now();
        let result = std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(shard_count);
            for (shard, rx) in from_door.into_iter().enumerate() {
                let worker = Worker {
                    shard,
                    cluster: &self.cluster,
                    policy: self.policy.clone(),
                    budget: self.engine.cache_budget.for_shard(shard),
                    compile_ms_per_layer: self.engine.compile_ms_per_layer,
                    faults: &faults[shard],
                    scale,
                    transport: self.live.transport,
                    anchor,
                    queued: &queued[shard],
                    in_flight: &in_flight[shard],
                    resident: &resident[shard],
                    num_networks,
                };
                let done = closed_loop.then(|| done_tx.clone());
                handles.push(scope.spawn(move || worker.serve(&rx, done.as_ref())));
            }
            // The workers hold clones; the front door only receives.
            drop(done_tx);

            let door = self.front_door(
                placement, &to_shard, &done_rx, anchor, &queued, &in_flight, &resident,
            );
            // Closing the admission channels is the workers' stop
            // signal — they drain, flush and return.
            drop(to_shard);

            let mut outputs: Vec<WorkerOutput> = Vec::with_capacity(shard_count);
            let mut first_error: Option<LiveError> = None;
            for (shard, handle) in handles.into_iter().enumerate() {
                match handle.join() {
                    Ok(Ok(output)) => outputs.push(output),
                    Ok(Err(error)) => {
                        first_error.get_or_insert(error);
                    }
                    Err(_) => {
                        first_error.get_or_insert(LiveError::Worker {
                            shard,
                            detail: "worker thread panicked".into(),
                        });
                    }
                }
            }
            if let Some(error) = first_error {
                return Err(error);
            }
            let (realized_trace, rejected) = door?;
            Ok((realized_trace, rejected, outputs))
        });
        let (realized_trace, rejected, outputs) = result?;
        let wall_elapsed_ms = anchor.elapsed().as_secs_f64() * 1000.0;

        let num_classes = self
            .trace
            .iter()
            .map(|r| usize::from(r.class))
            .max()
            .map_or(1, |c| c + 1);
        let makespan_ms = outputs
            .iter()
            .map(|o| o.makespan_ms)
            .fold(0.0_f64, f64::max);
        let reports: Vec<ShardReport> = outputs
            .into_iter()
            .enumerate()
            .map(|(shard, output)| ShardReport {
                shard,
                platform: self.cluster.platforms()[shard],
                requests: output.requests,
                batches: output.batches,
                busy_ms: output.busy_ms,
                makespan_ms: output.makespan_ms,
                plans_compiled: output.plans_compiled,
                cache: output.cache,
                queue_depth_mean: if makespan_ms > 0.0 {
                    output.depth_integral_ms / makespan_ms
                } else {
                    0.0
                },
                queue_depth_max: output.depth_max,
                fault: ShardFaultStats {
                    degraded_batches: output.degraded_batches,
                    ..ShardFaultStats::default()
                },
            })
            .collect();
        Ok(LiveReport {
            realized_trace,
            run: ServeRun {
                reports,
                rejected,
                shed: Vec::new(),
                failed: Vec::new(),
                class_stats: vec![super::ClassFaultStats::default(); num_classes],
                preempted: Vec::new(),
                scale: super::ScaleStats::default(),
                reconfig: super::ReconfigStats::default(),
            },
            wall_elapsed_ms,
            config: self.live,
        })
    }

    /// Paces admissions, runs placement + admission control, records
    /// realized stamps. Returns `(realized_trace, rejected)`.
    #[allow(clippy::too_many_arguments)]
    fn front_door(
        &self,
        placement: &mut dyn Placement,
        to_shard: &[Sender<Admit>],
        done_rx: &Receiver<u64>,
        anchor: Instant,
        queued: &[AtomicUsize],
        in_flight: &[AtomicUsize],
        resident: &[AtomicU64],
    ) -> Result<(Vec<Request>, Vec<Request>), LiveError> {
        let shard_count = to_shard.len();
        let scale = self.live.time_scale;
        let request_delay = self.live.transport.request_delay_ms();
        let healthy = vec![true; shard_count];
        let degrade = vec![1.0_f64; shard_count];
        let mut queued_snap = vec![0_usize; shard_count];
        let mut in_flight_snap = vec![0_usize; shard_count];
        let mut resident_snap = vec![0_u64; shard_count];

        let mut realized_trace: Vec<Request> = Vec::with_capacity(self.trace.len());
        let mut rejected: Vec<Request> = Vec::new();
        let mut last_stamp = 0.0_f64;
        let mut outstanding = 0_usize;

        for planned in &self.trace {
            match self.live.mode {
                LiveMode::OpenLoop => {
                    // Sleep until the planned (scaled) arrival instant;
                    // if we are already past it, admit immediately —
                    // the realized stamp records the slip.
                    let target_wall_ms = planned.arrival_ms * scale;
                    let now_wall_ms = anchor.elapsed().as_secs_f64() * 1000.0;
                    if target_wall_ms > now_wall_ms {
                        std::thread::sleep(wall_duration(target_wall_ms - now_wall_ms));
                    }
                }
                LiveMode::ClosedLoop { window } => {
                    while outstanding >= window {
                        // The watchdog bounds a wedged worker or an
                        // undersized window: no completion for 30 wall
                        // seconds means the loop cannot make progress.
                        match done_rx.recv_timeout(Duration::from_secs(30)) {
                            Ok(_) => outstanding -= 1,
                            Err(RecvTimeoutError::Timeout) => {
                                return Err(LiveError::Worker {
                                    shard: usize::MAX,
                                    detail: format!(
                                        "closed loop stalled: {outstanding} outstanding \
                                         requests, no completion in 30s (window too small \
                                         for the batching policy?)"
                                    ),
                                });
                            }
                            Err(RecvTimeoutError::Disconnected) => {
                                return Err(LiveError::Worker {
                                    shard: usize::MAX,
                                    detail: "all workers exited mid-run".into(),
                                });
                            }
                        }
                    }
                }
            }

            // Realized admission stamp: monotone by construction
            // (quantization floors, and flooring preserves order).
            let raw_ms = anchor.elapsed().as_secs_f64() * 1000.0 / scale;
            let mut stamp = if self.live.stamp_quantum_ms > 0.0 {
                (raw_ms / self.live.stamp_quantum_ms).floor() * self.live.stamp_quantum_ms
            } else {
                raw_ms
            };
            stamp = stamp.max(last_stamp);
            last_stamp = stamp;
            let realized = Request {
                id: planned.id,
                network: planned.network,
                arrival_ms: stamp,
                deadline_ms: if planned.deadline_ms.is_finite() {
                    stamp + (planned.deadline_ms - planned.arrival_ms)
                } else {
                    f64::INFINITY
                },
                class: planned.class,
            };
            realized_trace.push(realized);

            // Placement + admission control, mirroring the engine's
            // online arrival handler over a live-gauge snapshot.
            for shard in 0..shard_count {
                queued_snap[shard] = queued[shard].load(Ordering::Relaxed);
                in_flight_snap[shard] = in_flight[shard].load(Ordering::Relaxed);
                resident_snap[shard] = resident[shard].load(Ordering::Relaxed);
            }
            let view = ClusterView {
                platforms: self.cluster.platforms(),
                unit_service_ms: self.cluster.unit_service_ms(),
                queued: &queued_snap,
                in_flight: &in_flight_snap,
                resident_plan_bytes: &resident_snap,
                healthy: &healthy,
                degrade: &degrade,
            };
            let chosen = placement.assign(&realized, &view);
            assert!(
                chosen < shard_count,
                "placement routed request {} to shard {chosen} of {shard_count}",
                realized.id
            );
            let fits = |shard: usize| {
                self.engine.cache_budget.admits(
                    shard,
                    self.cluster.unit_plan_bytes()[shard][realized.network],
                )
            };
            let target = if fits(chosen) {
                Some(chosen)
            } else {
                (0..shard_count).find(|&shard| fits(shard))
            };
            match target {
                Some(shard) => {
                    queued[shard].fetch_add(1, Ordering::Relaxed);
                    if to_shard[shard]
                        .send(Admit {
                            request: realized,
                            available_ms: stamp + request_delay,
                        })
                        .is_err()
                    {
                        // The worker is gone; its join result carries
                        // the real failure.
                        return Err(LiveError::Worker {
                            shard,
                            detail: "admission channel closed mid-run".into(),
                        });
                    }
                    outstanding += 1;
                }
                None => rejected.push(realized),
            }
        }
        Ok((realized_trace, rejected))
    }
}

/// Per-shard worker state and parameters (borrowed into its thread).
struct Worker<'a> {
    shard: usize,
    cluster: &'a ServeCluster,
    policy: Arc<dyn BatchPolicy>,
    budget: Option<u64>,
    compile_ms_per_layer: f64,
    faults: &'a [FaultEvent],
    scale: f64,
    transport: TransportModel,
    anchor: Instant,
    queued: &'a AtomicUsize,
    in_flight: &'a AtomicUsize,
    resident: &'a AtomicU64,
    num_networks: usize,
}

/// What one worker hands back at join time.
struct WorkerOutput {
    requests: Vec<ServedRequest>,
    batches: Vec<BatchRecord>,
    busy_ms: f64,
    makespan_ms: f64,
    plans_compiled: Vec<(usize, usize)>,
    cache: PlanCacheStats,
    depth_integral_ms: f64,
    depth_max: usize,
    degraded_batches: u64,
}

impl Worker<'_> {
    /// Simulated "now" on this worker's clock.
    fn sim_now(&self) -> f64 {
        self.anchor.elapsed().as_secs_f64() * 1000.0 / self.scale
    }

    /// Sleeps until simulated instant `target_ms` (no-op if past).
    fn sleep_until(&self, target_ms: f64) {
        let wall_target_ms = target_ms * self.scale;
        let now_wall_ms = self.anchor.elapsed().as_secs_f64() * 1000.0;
        if wall_target_ms > now_wall_ms {
            std::thread::sleep(wall_duration(wall_target_ms - now_wall_ms));
        }
    }

    /// The service multiplier and compile surcharge of the fault
    /// windows active at `t_ms` (latest-starting window wins, like the
    /// engine's depth-tracked state).
    fn fault_state_at(&self, t_ms: f64) -> (f64, f64) {
        let mut factor = 1.0;
        let mut extra = 0.0;
        for event in self.faults {
            match event.kind {
                FaultKind::Degrade {
                    factor: f,
                    window_ms,
                } => {
                    if event.at_ms <= t_ms && t_ms < event.at_ms + window_ms {
                        factor = f;
                    }
                }
                FaultKind::StallCompile {
                    extra_ms,
                    window_ms,
                } => {
                    if event.at_ms <= t_ms && t_ms < event.at_ms + window_ms {
                        extra = extra_ms;
                    }
                }
                // Rejected at construction.
                FaultKind::Crash { .. } | FaultKind::TransientCompileFail { .. } => {}
            }
        }
        (factor, extra)
    }

    /// The worker loop: drain admissions, form batches by the shared
    /// policy, execute each batch for its modeled (scaled) duration.
    fn serve(
        self,
        rx: &Receiver<Admit>,
        done: Option<&Sender<u64>>,
    ) -> Result<WorkerOutput, LiveError> {
        let mut queues: Vec<VecDeque<Request>> =
            (0..self.num_networks).map(|_| VecDeque::new()).collect();
        let mut available: Vec<VecDeque<f64>> =
            (0..self.num_networks).map(|_| VecDeque::new()).collect();
        let mut cache = PlanCache::new(self.budget);
        let mut service_memo: std::collections::BTreeMap<(usize, usize), f64> =
            std::collections::BTreeMap::new();
        let mut out = WorkerOutput {
            requests: Vec::new(),
            batches: Vec::new(),
            busy_ms: 0.0,
            makespan_ms: 0.0,
            plans_compiled: Vec::new(),
            cache: PlanCacheStats::default(),
            depth_integral_ms: 0.0,
            depth_max: 0,
            degraded_batches: 0,
        };
        let mut depth = 0_usize;
        let mut depth_last_ms = 0.0_f64;
        let mut open = true;

        let note_depth = |integral: &mut f64,
                          depth: &mut usize,
                          last: &mut f64,
                          max: &mut usize,
                          now: f64,
                          next: usize| {
            *integral += *depth as f64 * (now - *last);
            *last = now;
            *depth = next;
            *max = (*max).max(next);
        };

        loop {
            // Drain everything already admitted, without blocking.
            loop {
                match rx.try_recv() {
                    Ok(admit) => {
                        let now = self.sim_now();
                        let next = depth + 1;
                        note_depth(
                            &mut out.depth_integral_ms,
                            &mut depth,
                            &mut depth_last_ms,
                            &mut out.depth_max,
                            now,
                            next,
                        );
                        queues[admit.request.network].push_back(admit.request);
                        available[admit.request.network].push_back(admit.available_ms);
                    }
                    Err(TryRecvError::Empty) => break,
                    Err(TryRecvError::Disconnected) => {
                        open = false;
                        break;
                    }
                }
            }

            // Policy pass, mirroring the engine's dispatch selection:
            // most urgent ready queue first, lowest network on ties.
            let now_ms = self.sim_now();
            let mut ready: Vec<(f64, usize, usize)> = Vec::new();
            let mut wake_ms = f64::INFINITY;
            for (net, queue) in queues.iter_mut().enumerate() {
                if queue.is_empty() {
                    continue;
                }
                let contiguous: &[Request] = queue.make_contiguous();
                match self.policy.decide(contiguous, now_ms, open) {
                    PolicyDecision::Dispatch { take } => {
                        let take = take.clamp(1, contiguous.len());
                        let urgency = self.policy.urgency(contiguous, now_ms);
                        ready.push((urgency, net, take));
                    }
                    PolicyDecision::WaitUntil(at) => wake_ms = wake_ms.min(at),
                    PolicyDecision::WaitForArrivals => {}
                }
            }
            ready.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));

            if let Some(&(_, net, take)) = ready.first() {
                self.execute_batch(
                    net,
                    take,
                    &mut queues,
                    &mut available,
                    &mut cache,
                    &mut service_memo,
                    &mut out,
                    done,
                )?;
                let now = self.sim_now();
                let next = depth.saturating_sub(take);
                note_depth(
                    &mut out.depth_integral_ms,
                    &mut depth,
                    &mut depth_last_ms,
                    &mut out.depth_max,
                    now,
                    next,
                );
                continue;
            }

            let all_empty = queues.iter().all(VecDeque::is_empty);
            if !open && all_empty {
                break;
            }
            if !open {
                if wake_ms.is_finite() {
                    // A timed batch close (e.g. a Deadline expiry)
                    // still pending after the trace ended.
                    self.sleep_until(wake_ms);
                    continue;
                }
                let pending: usize = queues.iter().map(VecDeque::len).sum();
                return Err(LiveError::Worker {
                    shard: self.shard,
                    detail: format!(
                        "wedged with {pending} queued requests (policy never became ready \
                         after the trace ended)"
                    ),
                });
            }
            // Open: block until the next admission (or the batch-close
            // instant, whichever is sooner).
            if wake_ms.is_finite() {
                let wall_ms = ((wake_ms - self.sim_now()) * self.scale).max(0.0);
                match rx.recv_timeout(wall_duration(wall_ms)) {
                    Ok(admit) => {
                        let now = self.sim_now();
                        let next = depth + 1;
                        note_depth(
                            &mut out.depth_integral_ms,
                            &mut depth,
                            &mut depth_last_ms,
                            &mut out.depth_max,
                            now,
                            next,
                        );
                        queues[admit.request.network].push_back(admit.request);
                        available[admit.request.network].push_back(admit.available_ms);
                    }
                    Err(RecvTimeoutError::Timeout) => {}
                    Err(RecvTimeoutError::Disconnected) => open = false,
                }
            } else {
                match rx.recv() {
                    Ok(admit) => {
                        let now = self.sim_now();
                        let next = depth + 1;
                        note_depth(
                            &mut out.depth_integral_ms,
                            &mut depth,
                            &mut depth_last_ms,
                            &mut out.depth_max,
                            now,
                            next,
                        );
                        queues[admit.request.network].push_back(admit.request);
                        available[admit.request.network].push_back(admit.available_ms);
                    }
                    Err(_) => open = false,
                }
            }
        }
        out.cache = cache.into_stats();
        Ok(out)
    }

    /// Launches one batch: transport gate, modeled compile + service
    /// (fault windows applied), scaled occupancy sleep, records.
    #[allow(clippy::too_many_arguments)]
    fn execute_batch(
        &self,
        net: usize,
        take: usize,
        queues: &mut [VecDeque<Request>],
        available: &mut [VecDeque<f64>],
        cache: &mut PlanCache,
        service_memo: &mut std::collections::BTreeMap<(usize, usize), f64>,
        out: &mut WorkerOutput,
        done: Option<&Sender<u64>>,
    ) -> Result<(), LiveError> {
        let members: Vec<Request> = queues[net].drain(..take).collect();
        let mut gate_ms = 0.0_f64;
        for _ in 0..take {
            if let Some(avail) = available[net].pop_front() {
                gate_ms = gate_ms.max(avail);
            }
        }
        self.queued.fetch_sub(take, Ordering::Relaxed);
        // No member may be batched before its request envelope has
        // crossed the modeled link.
        self.sleep_until(gate_ms);
        let start_ms = self.sim_now();

        let service_base = match service_memo.get(&(net, take)) {
            Some(&ms) => ms,
            None => {
                let plan = self
                    .cluster
                    .shard_executor(self.shard)
                    .with_batch(take)
                    .try_plan(&self.cluster.networks()[net])?;
                let ms = plan.run().total_ms;
                out.plans_compiled.push((net, take));
                service_memo.insert((net, take), ms);
                ms
            }
        };
        let (degrade_factor, stall_extra) = self.fault_state_at(start_ms);
        // Window membership decides the counter (the engine's rule —
        // a factor-1.0 window still counts), and the factor is exactly
        // 1.0 outside every window, so the multiply is an identity
        // there.
        let service_ms = if self.degrade_window_active(start_ms) {
            out.degraded_batches += 1;
            service_base * degrade_factor
        } else {
            service_base
        };
        let compile_charge = self.compile_ms_per_layer
            * self.cluster.unit_plan(self.shard, net).layer_count() as f64
            + stall_extra;
        let compile_ms = cache.access(
            (net, take),
            self.cluster.unit_plan_bytes()[self.shard][net],
            compile_charge,
        );
        self.resident
            .store(cache.resident_bytes(), Ordering::Relaxed);

        // Occupy the shard for the modeled duration, scaled to wall
        // time. The recorded costs stay the modeled values; only the
        // instants are live.
        self.in_flight.store(take, Ordering::Relaxed);
        self.sleep_until(start_ms + compile_ms + service_ms);
        self.in_flight.store(0, Ordering::Relaxed);
        let finish_ms = self.sim_now();
        let response_delay = self.transport.response_delay_ms();

        out.busy_ms += compile_ms + service_ms;
        out.makespan_ms = out.makespan_ms.max(finish_ms);
        out.batches.push(BatchRecord {
            network: net,
            size: take,
            start_ms,
            service_ms,
            compile_ms,
        });
        for request in members {
            out.requests.push(ServedRequest {
                id: request.id,
                network: request.network,
                arrival_ms: request.arrival_ms,
                deadline_ms: request.deadline_ms,
                class: request.class,
                start_ms,
                completion_ms: finish_ms + response_delay,
                batch_size: take,
            });
            if let Some(done_tx) = done {
                // The front door may have stopped listening (open
                // loop drains nothing); that is not an error.
                let _ = done_tx.send(request.id);
            }
        }
        Ok(())
    }

    /// Whether any degrade window (even factor 1.0) covers `t_ms` —
    /// the engine counts window membership, not slowdown.
    fn degrade_window_active(&self, t_ms: f64) -> bool {
        self.faults.iter().any(|event| {
            matches!(event.kind, FaultKind::Degrade { window_ms, .. }
                if event.at_ms <= t_ms && t_ms < event.at_ms + window_ms)
        })
    }
}

/// A non-negative wall duration from (possibly jittery) milliseconds.
fn wall_duration(ms: f64) -> Duration {
    if ms.is_finite() && ms > 0.0 {
        Duration::from_secs_f64(ms / 1000.0)
    } else {
        Duration::ZERO
    }
}
