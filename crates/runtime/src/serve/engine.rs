//! The discrete-event serving engine.
//!
//! One deterministic event queue drives the whole cluster: **arrival**
//! events admit requests (invoking the [`Placement`] online, with a
//! live [`ClusterView`]), **batch-close** events fire at the instant a
//! [`BatchPolicy`] named in a [`PolicyDecision::WaitUntil`],
//! **service-complete** events free a shard and let it dispatch again,
//! and **fault** events from the configured [`FaultPlan`] crash,
//! degrade or stall shards (recovery — retries, hedges — rides the
//! same queue). Events are totally ordered by `(time, class,
//! sequence)` — time via `f64::total_cmp`, then arrivals before
//! completions before timers before fault/retry/hedge events at equal
//! instants, and a monotone sequence number last — so a run is a pure
//! function of its inputs: byte-identical across repeats, machines and
//! worker-thread counts, with or without faults.
//!
//! Two admission modes bound the refactor:
//!
//! * [`Admission::Online`] (default): placement sees the live cluster
//!   (backlog, in-flight batches, plan-cache residency, shard health)
//!   at each arrival, and the admission controller re-places or
//!   rejects requests whose plan cannot fit the target shard's cache
//!   budget.
//! * [`Admission::Preplaced`] is the legacy-parity shim: placement
//!   runs over the whole trace up front against a zeroed view, exactly
//!   like the pre-engine sequential admission pass. Under an unbounded
//!   cache and zero compile cost the engine reproduces the
//!   three-phase pipeline's outcomes bit for bit (pinned by
//!   `tests/serve_engine.rs`).
//!
//! Plan memory is simulated per shard by a capacity-bounded LRU cache
//! keyed on `(network, batch)` and charged with
//! [`NetworkPlan::mem_bytes`](crate::NetworkPlan::mem_bytes); a miss
//! bills `compile_ms_per_layer × layers` of simulated latency before
//! the batch starts executing.
//!
//! The fault model, injected-event ordering and recovery semantics are
//! specified in `docs/FAULT_TOLERANCE.md`; an empty [`FaultPlan`] (the
//! default) leaves every byte of the fault-free engine's output
//! untouched, pinned by `tests/serve_fault.rs`.

use super::fault::{
    ClassFaultStats, FaultKind, FaultPlan, HedgePolicy, RetryPolicy, ShardFaultStats, ShedPolicy,
};
use super::load::Request;
use super::metrics::PlanCacheStats;
use super::placement::{ClusterView, Placement};
use super::policy::{BatchPolicy, PolicyDecision};
use super::scale::{AutoscalePolicy, EnergyFrontier, ReconfigPolicy, ReconfigStats, ScaleStats};
use super::slo::PreemptPolicy;
use super::{BatchRecord, ServeCluster, ServedRequest, ShardReport};
use crate::backend::RuntimeError;
use sma_energy::EnergyModel;
use std::cmp::Ordering;
use std::collections::{BTreeMap, BTreeSet, BinaryHeap, VecDeque};

/// When the [`Placement`] is consulted and what it may see.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// Placement runs at each request's arrival event with the live
    /// [`ClusterView`]; requests whose plan cannot fit the chosen
    /// shard's cache budget are re-placed (first fitting shard in
    /// index order) or rejected.
    Online,
    /// Legacy-parity shim: placement runs over the whole trace before
    /// the clock starts, against a view whose live fields are zero —
    /// the pre-engine sequential admission pass. No admission control,
    /// no shedding, no hedging; retries return to the failed shard.
    Preplaced,
}

/// Per-shard plan-cache capacity.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CacheBudget {
    /// No bound: every compiled plan stays resident (the legacy
    /// behaviour).
    Unbounded,
    /// The same byte budget on every shard.
    Uniform(u64),
    /// An explicit byte budget per shard (must be one entry per
    /// shard).
    PerShard(Vec<u64>),
}

impl CacheBudget {
    /// The byte budget of one shard (`None` = unbounded).
    #[must_use]
    pub fn for_shard(&self, shard: usize) -> Option<u64> {
        match self {
            CacheBudget::Unbounded => None,
            CacheBudget::Uniform(bytes) => Some(*bytes),
            CacheBudget::PerShard(bytes) => bytes.get(shard).copied(),
        }
    }

    /// Whether a plan of `bytes` can ever be resident on `shard`.
    #[must_use]
    pub fn admits(&self, shard: usize, bytes: u64) -> bool {
        self.for_shard(shard).is_none_or(|budget| bytes <= budget)
    }

    /// Report label (`unbounded`, `32KiB`, `per-shard`).
    #[must_use]
    pub fn label(&self) -> String {
        match self {
            CacheBudget::Unbounded => "unbounded".into(),
            CacheBudget::Uniform(bytes) => format!("{}KiB", bytes / 1024),
            CacheBudget::PerShard(_) => "per-shard".into(),
        }
    }
}

/// Engine knobs: admission mode, plan-cache capacity, compile cost,
/// and the fault-tolerance layer (fault schedule, retry/hedge/shed
/// policies — all default to no-ops, so `EngineConfig::default()` and
/// [`EngineConfig::legacy`] behave byte-identically to the fault-free
/// engine).
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// When placement decides and what it sees.
    pub admission: Admission,
    /// Per-shard plan-cache capacity.
    pub cache_budget: CacheBudget,
    /// Simulated milliseconds billed per network layer when a batch's
    /// plan misses the shard's plan cache (compile-on-miss latency).
    pub compile_ms_per_layer: f64,
    /// Pre-drawn fault schedule (empty = no faults).
    pub faults: FaultPlan,
    /// Retry policy for requests whose batch a crash aborts.
    pub retry: RetryPolicy,
    /// Opt-in request hedging (`None` = never hedge). Online admission
    /// only.
    pub hedge: Option<HedgePolicy>,
    /// Opt-in admission shedding by SLO class (`None` = never shed).
    /// Online admission only.
    pub shed: Option<ShedPolicy>,
    /// Opt-in strict-priority preemption between SLO classes (`None` =
    /// never preempt). Online admission only.
    pub preempt: Option<PreemptPolicy>,
    /// Opt-in cost-aware autoscaling (`None` = static fleet). Online
    /// admission only. A policy whose headroom is `<= 0` is inert:
    /// no tick events are scheduled and the run stays byte-identical
    /// to `scale: None`.
    pub scale: Option<AutoscalePolicy>,
    /// Opt-in serve-time backend reconfiguration (`None` = per-shape
    /// configuration selection, the compile-time default). Only shards
    /// whose backend implements `Reconfigurable` participate.
    pub reconfig: Option<ReconfigPolicy>,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            admission: Admission::Online,
            cache_budget: CacheBudget::Unbounded,
            compile_ms_per_layer: 0.0,
            faults: FaultPlan::none(),
            retry: RetryPolicy::default(),
            hedge: None,
            shed: None,
            preempt: None,
            scale: None,
            reconfig: None,
        }
    }
}

impl EngineConfig {
    /// The legacy-parity shim: preplaced admission, unbounded cache,
    /// free compiles, no faults. Under this configuration the event
    /// engine reproduces the pre-engine three-phase pipeline bit for
    /// bit.
    #[must_use]
    pub fn legacy() -> Self {
        EngineConfig {
            admission: Admission::Preplaced,
            ..EngineConfig::default()
        }
    }

    /// This configuration with a different cache budget.
    #[must_use]
    pub fn with_cache_budget(mut self, budget: CacheBudget) -> Self {
        self.cache_budget = budget;
        self
    }

    /// This configuration with a different compile-on-miss cost.
    #[must_use]
    pub fn with_compile_cost(mut self, ms_per_layer: f64) -> Self {
        self.compile_ms_per_layer = ms_per_layer.max(0.0);
        self
    }

    /// This configuration with a fault schedule.
    #[must_use]
    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }

    /// This configuration with a different retry policy.
    #[must_use]
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// This configuration with request hedging enabled.
    #[must_use]
    pub fn with_hedge(mut self, hedge: HedgePolicy) -> Self {
        self.hedge = Some(hedge);
        self
    }

    /// This configuration with admission shedding enabled.
    #[must_use]
    pub fn with_shed(mut self, shed: ShedPolicy) -> Self {
        self.shed = Some(shed);
        self
    }

    /// This configuration with SLO-class preemption enabled.
    #[must_use]
    pub fn with_preempt(mut self, preempt: PreemptPolicy) -> Self {
        self.preempt = Some(preempt);
        self
    }

    /// This configuration with cost-aware autoscaling enabled.
    #[must_use]
    pub fn with_scale(mut self, scale: AutoscalePolicy) -> Self {
        self.scale = Some(scale);
        self
    }

    /// This configuration with serve-time backend reconfiguration
    /// enabled.
    #[must_use]
    pub fn with_reconfig(mut self, reconfig: ReconfigPolicy) -> Self {
        self.reconfig = Some(reconfig);
        self
    }
}

/// Everything one engine run produced: per-shard reports (shard
/// order), plus every request that was *not* served and why. The four
/// buckets — served (in the reports), `rejected`, `shed`, `failed` —
/// partition the trace exactly: no request is lost or double-counted
/// (pinned by the reconciliation proptest in `tests/serve_fault.rs`).
#[derive(Debug, Clone)]
pub struct ServeRun {
    /// One report per shard, in shard order.
    pub reports: Vec<ShardReport>,
    /// Requests rejected at admission (no shard's cache budget could
    /// ever hold their plan), in arrival order. Empty under
    /// [`Admission::Preplaced`] or an unbounded budget.
    pub rejected: Vec<Request>,
    /// Requests shed by the [`ShedPolicy`] watermark, in arrival
    /// order. Empty without a shed policy.
    pub shed: Vec<Request>,
    /// Requests abandoned after exhausting their [`RetryPolicy`], in
    /// failure order. Empty without faults.
    pub failed: Vec<Request>,
    /// Per-SLO-class recovery counters, indexed by class.
    pub class_stats: Vec<ClassFaultStats>,
    /// Ids whose batch a [`PreemptPolicy`] evicted at least once,
    /// sorted. Not a fifth partition bucket — preemption re-queues, so
    /// every preempted id still lands in exactly one of the four
    /// buckets (preempted-then-served = this set ∩ served, pinned by
    /// `tests/serve_scale.rs`).
    pub preempted: Vec<u64>,
    /// Autoscaler counters (all zero without an enabled
    /// [`AutoscalePolicy`]).
    pub scale: ScaleStats,
    /// Reconfiguration counters (all zero without a
    /// [`ReconfigPolicy`]).
    pub reconfig: ReconfigStats,
}

/// Capacity-bounded LRU over simulated plan residency, keyed on
/// `(network, batch)`.
#[derive(Debug)]
pub(super) struct PlanCache {
    budget: Option<u64>,
    /// `(bytes, last_use)` per resident plan; `last_use` ticks are
    /// unique, so the LRU victim is always unambiguous.
    entries: BTreeMap<(usize, usize), (u64, u64)>,
    resident_bytes: u64,
    tick: u64,
    stats: PlanCacheStats,
}

impl PlanCache {
    pub(super) fn new(budget: Option<u64>) -> Self {
        PlanCache {
            budget,
            entries: BTreeMap::new(),
            resident_bytes: 0,
            tick: 0,
            stats: PlanCacheStats::default(),
        }
    }

    /// Whether a plan is resident right now (no stats side effects —
    /// the transient-compile-fail gate peeks without billing).
    pub(super) fn contains(&self, key: &(usize, usize)) -> bool {
        self.entries.contains_key(key)
    }

    /// Looks up (and on miss admits) a plan, returning the simulated
    /// compile charge: 0 on a hit, `compile_ms` on a miss. Eviction is
    /// LRU until the new plan fits; a plan larger than the whole
    /// budget empties the cache and is admitted anyway (the admission
    /// controller keeps such requests out under [`Admission::Online`],
    /// so this only arises when a caller opts out of admission
    /// control).
    pub(super) fn access(&mut self, key: (usize, usize), bytes: u64, compile_ms: f64) -> f64 {
        self.stats.lookups += 1;
        self.tick += 1;
        if let Some((_, last_use)) = self.entries.get_mut(&key) {
            *last_use = self.tick;
            self.stats.hits += 1;
            return 0.0;
        }
        self.stats.misses += 1;
        if let Some(budget) = self.budget {
            while self.resident_bytes + bytes > budget && !self.entries.is_empty() {
                let victim = *self
                    .entries
                    .iter()
                    .min_by_key(|(_, &(_, last_use))| last_use)
                    .map(|(k, _)| k)
                    // sma-lint: allow(no-panic) — the loop guard
                    // just checked !entries.is_empty().
                    .expect("non-empty cache has an LRU victim");
                // sma-lint: allow(no-panic) — victim was read out of
                // this map two lines up; no intervening mutation.
                let (evicted_bytes, _) = self.entries.remove(&victim).expect("victim resident");
                self.resident_bytes -= evicted_bytes;
                self.stats.evictions += 1;
            }
        }
        self.entries.insert(key, (bytes, self.tick));
        self.resident_bytes += bytes;
        self.stats.peak_bytes = self.stats.peak_bytes.max(self.resident_bytes);
        compile_ms
    }

    /// Bytes currently resident (the live gauge behind
    /// [`ClusterView::resident_plan_bytes`](super::ClusterView)).
    pub(super) fn resident_bytes(&self) -> u64 {
        self.resident_bytes
    }

    pub(super) fn into_stats(mut self) -> PlanCacheStats {
        self.stats.resident_bytes = self.resident_bytes;
        self.stats
    }
}

/// Event classes, in same-instant processing order: arrivals (class 0,
/// merged straight from the sorted trace rather than the heap) enqueue
/// before a completion evaluates (the pre-engine drain admitted
/// `arrival_ms <= now` before deciding), completions free the shard
/// before a stale timer re-evaluates, and the fault family fires last:
/// a batch completing at the exact instant of a crash completes,
/// recovery lands before a same-instant retry re-places, and hedges go
/// last of all. The control plane appends two fixed slots *after* the
/// existing family — preemption decides once every same-instant
/// completion, fault and recovery action has settled (a batch
/// completing at the preemption instant completes), and the autoscale
/// tick observes last of all, so no pre-existing same-instant ordering
/// changes when the new classes are enabled.
const CLASS_COMPLETE: u8 = 1;
const CLASS_TIMER: u8 = 2;
const CLASS_FAULT: u8 = 3;
const CLASS_RETRY: u8 = 4;
const CLASS_HEDGE: u8 = 5;
const CLASS_PREEMPT: u8 = 6;
const CLASS_SCALE: u8 = 7;

/// What a popped event does. The payload is deliberately not part of
/// the ordering — `(time, class, seq)` stays the total order.
#[derive(Debug, Clone, Copy)]
enum EventKind {
    /// The in-flight batch of epoch `epoch` finishes (stale epochs —
    /// batches a crash aborted — are ignored).
    Complete { epoch: u64 },
    /// A batch-close timer from a [`PolicyDecision::WaitUntil`].
    Timer,
    /// [`FaultKind::Crash`] fires.
    Crash { recover_ms: f64 },
    /// The shard comes back up (stale if a later crash extended the
    /// outage).
    Recover,
    /// [`FaultKind::Degrade`] window opens.
    DegradeStart { factor: f64, window_ms: f64 },
    /// A degrade window closes.
    DegradeEnd,
    /// [`FaultKind::StallCompile`] window opens.
    StallStart { extra_ms: f64, window_ms: f64 },
    /// A compile-stall window closes.
    StallEnd,
    /// [`FaultKind::TransientCompileFail`] window opens (closes by
    /// timestamp comparison; blocked shards schedule their own wake).
    CompileFailStart { window_ms: f64 },
    /// A crash victim re-enters admission after its backoff.
    Retry { request: Request, from_shard: usize },
    /// The hedge delay of an admitted request expired.
    Hedge { request: Request, origin: usize },
    /// An urgent arrival claimed the shard: evict the running batch of
    /// epoch `epoch` (stale epochs — the batch completed or was
    /// already evicted at this instant — are ignored).
    Preempt { epoch: u64 },
    /// The autoscaler evaluates the fleet against the energy frontier.
    ScaleTick,
}

/// One queued engine event. Ordering is ascending `(time, class,
/// seq)`; `seq` is a global push counter, so ties are broken by
/// creation order and the queue is a total order.
#[derive(Debug, Clone, Copy)]
struct Event {
    time: f64,
    class: u8,
    seq: u64,
    shard: usize,
    kind: EventKind,
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for Event {}
impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Event {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the earliest
        // event on top.
        other
            .time
            .total_cmp(&self.time)
            .then(other.class.cmp(&self.class))
            .then(other.seq.cmp(&self.seq))
    }
}

/// The batch currently executing on a shard. Recording happens at
/// completion (not dispatch), so a crash can abort the batch without
/// leaving phantom records behind.
struct InFlightBatch {
    network: usize,
    start_ms: f64,
    compile_ms: f64,
    service_ms: f64,
    /// Dispatch epoch: a crash bumps past it, invalidating the
    /// completion event already in the queue.
    epoch: u64,
    requests: Vec<Request>,
}

/// Per-shard reconfiguration state: the admission window and the
/// pinned fabric configuration, priced once per run from the backend's
/// `Reconfigurable` capability.
///
/// Decisions read only the shard's *admission* history (arrival-event
/// enqueues — never retries, hedges or preemption re-queues, and never
/// completion timing), so the pinned configuration at any point is a
/// pure function of (trace, placement): trace-deterministic, inside
/// the live-twin oracle's timing-robust envelope.
struct ReconfigShard {
    /// Sliding window of admitted network ids, newest at the back.
    window: VecDeque<usize>,
    window_cap: usize,
    every: u64,
    admissions: u64,
    /// The currently pinned configuration index.
    pinned: usize,
    /// `cycles[config][network]`: whole-network compute cycles under a
    /// pinned configuration (pure integers — no float ties).
    cycles: Vec<Vec<u64>>,
    /// `penalty[config][network]`: pinned service-time multiplier
    /// relative to per-shape-best (always >= 1).
    penalty: Vec<Vec<f64>>,
}

impl ReconfigShard {
    /// Feeds one admission into the window; every `every` admissions,
    /// re-pins the configuration minimising total cycles over the
    /// window's shape histogram (ties to the lowest index).
    fn observe(&mut self, net: usize, stats: &mut ReconfigStats) {
        self.window.push_back(net);
        if self.window.len() > self.window_cap {
            self.window.pop_front();
        }
        self.admissions += 1;
        if !self.admissions.is_multiple_of(self.every) {
            return;
        }
        stats.evaluations += 1;
        let mut counts = vec![0u64; self.cycles[0].len()];
        for &observed in &self.window {
            counts[observed] += 1;
        }
        let best = best_config(&self.cycles, &counts);
        if best != self.pinned {
            self.pinned = best;
            stats.reconfigs += 1;
        }
    }
}

/// The configuration minimising `Σ counts[net] × cycles[config][net]`
/// (ties to the lowest index; u128 accumulation cannot overflow).
fn best_config(cycles: &[Vec<u64>], counts: &[u64]) -> usize {
    let mut best = 0usize;
    let mut best_cost = u128::MAX;
    for (config, row) in cycles.iter().enumerate() {
        let cost: u128 = row
            .iter()
            .zip(counts)
            .map(|(&c, &k)| u128::from(c) * u128::from(k))
            .sum();
        if cost < best_cost {
            best_cost = cost;
            best = config;
        }
    }
    best
}

/// Live state of one shard inside the event loop.
struct ShardState {
    /// Per-network FIFO queues of admitted-but-undispatched requests.
    queues: Vec<VecDeque<Request>>,
    /// Preplaced mode: arrivals still to come for this shard, per
    /// network (the oracle the legacy drain exposed to policies).
    future_per_net: Vec<usize>,
    /// The executing batch (`None` = idle).
    in_flight: Option<InFlightBatch>,
    /// Monotone dispatch counter backing [`InFlightBatch::epoch`].
    epoch: u64,
    /// Crash state: the instant the shard comes back up (`None` = up).
    down_until: Option<f64>,
    /// When the current outage began (meaningful only while down).
    down_since: f64,
    /// Nesting depth of active degrade windows.
    degrade_depth: u32,
    /// Live service-time multiplier (1.0 when no window is active;
    /// with overlapping windows the most recent factor wins).
    degrade_factor: f64,
    /// Nesting depth of active compile-stall windows.
    stall_depth: u32,
    /// Extra compile-on-miss latency while stalled (0 when clear).
    stall_extra_ms: f64,
    /// Transient compile failures are active while `now` is before
    /// this instant.
    compile_fail_until: f64,
    /// Earliest batch-close timer currently scheduled (dedup only —
    /// stale timers are harmless, they just re-evaluate).
    pending_timer: f64,
    /// Memoized `(network, batch) → service ms`; first touch compiles
    /// the plan through the executor.
    service_ms: BTreeMap<(usize, usize), f64>,
    cache: PlanCache,
    /// Live queued-request count (all networks).
    depth: usize,
    depth_max: usize,
    /// `∫ depth dt` for the time-weighted mean queue depth.
    depth_integral_ms: f64,
    depth_last_ms: f64,
    /// Serve-time reconfiguration state (`None` = the backend is not
    /// reconfigurable, or the feature is off).
    reconfig: Option<ReconfigShard>,
    report: ShardReport,
}

impl ShardState {
    /// Records a queue-depth change at `now` (time-weighted).
    fn note_depth(&mut self, now_ms: f64, depth: usize) {
        self.depth_integral_ms += self.depth as f64 * (now_ms - self.depth_last_ms);
        self.depth_last_ms = now_ms;
        self.depth = depth;
        self.depth_max = self.depth_max.max(depth);
    }

    /// Size of the in-flight batch (0 when idle).
    fn in_flight_len(&self) -> usize {
        self.in_flight.as_ref().map_or(0, |b| b.requests.len())
    }

    /// Outstanding requests on this shard: queued + in flight — the
    /// engine-side twin of [`ClusterView::outstanding`], and the one
    /// definition the backlog gauge and the autoscaler both read.
    fn outstanding(&self) -> usize {
        self.depth + self.in_flight_len()
    }
}

/// The engine proper: all mutable run state behind one struct so the
/// event handlers stay readable. The placement is threaded through the
/// handlers that consult it (it is the caller's mutable state).
struct Engine<'a> {
    cluster: &'a ServeCluster,
    policy: &'a dyn BatchPolicy,
    config: &'a EngineConfig,
    shards: Vec<ShardState>,
    heap: BinaryHeap<Event>,
    seq: u64,
    rejected: Vec<Request>,
    shed: Vec<Request>,
    failed: Vec<Request>,
    class_stats: Vec<ClassFaultStats>,
    /// Ids already served (first completion wins). Maintained only
    /// when faults or hedging are configured — the fault-free path
    /// never consults it.
    served: BTreeSet<u64>,
    /// Ids already in `failed` (dedup — hedge twins can fail twice).
    failed_ids: BTreeSet<u64>,
    /// Retries scheduled so far, per request id.
    attempts: BTreeMap<u64, u32>,
    /// Online mode: arrivals still to come, per network.
    global_future: Vec<usize>,
    /// Preplaced mode: the up-front assignment, per trace index.
    preassigned: Option<Vec<usize>>,
    /// Number of SLO classes in the trace (max class + 1).
    num_classes: usize,
    /// Ids preempted at least once (maintained only with preemption
    /// on).
    preempted_ids: BTreeSet<u64>,
    /// Autoscaler fleet state: whether each shard is powered.
    active: Vec<bool>,
    /// Drain-before-remove: a draining shard stops accepting
    /// placements but finishes its queue before it parks.
    draining: Vec<bool>,
    /// Consecutive over-watermark evaluations (hysteresis).
    up_streak: u32,
    /// Consecutive under-watermark evaluations (hysteresis).
    down_streak: u32,
    scale_stats: ScaleStats,
    /// The goodput-per-joule frontier (built only with autoscaling
    /// enabled — the static path never prices plans).
    frontier: Option<EnergyFrontier>,
    /// Cumulative arrivals per network: the observed traffic mix the
    /// frontier weighs shard costs by.
    mix_counts: Vec<u64>,
    reconfig_stats: ReconfigStats,
    // Scratch buffers for the live view (rebuilt per consultation).
    live_queued: Vec<usize>,
    live_in_flight: Vec<usize>,
    live_resident: Vec<u64>,
    live_healthy: Vec<bool>,
    live_degrade: Vec<f64>,
}

/// Runs the engine. Consumes the placement's mutable state for one
/// run; everything else is borrowed immutably, so distinct runs (and
/// distinct combos in the benchmark matrix) share one compiled
/// [`ServeCluster`].
pub(super) fn run_engine(
    cluster: &ServeCluster,
    policy: &dyn BatchPolicy,
    placement: &mut dyn Placement,
    trace: &[Request],
    config: &EngineConfig,
) -> Result<ServeRun, RuntimeError> {
    let shard_count = cluster.shard_count();
    if let CacheBudget::PerShard(budgets) = &config.cache_budget {
        assert_eq!(
            budgets.len(),
            shard_count,
            "per-shard cache budget needs one entry per shard"
        );
    }
    if config.preempt.is_some() || config.scale.is_some() {
        assert_eq!(
            config.admission,
            Admission::Online,
            "preemption and autoscaling are online-admission features"
        );
    }
    if let Some(scale) = &config.scale {
        scale.validate(shard_count);
    }
    if let Some(reconfig) = &config.reconfig {
        reconfig.validate();
    }
    let mut engine = Engine::new(cluster, policy, config, trace);
    engine.preassign(placement, trace);
    engine.schedule_faults();
    engine.schedule_first_scale_tick();

    let mut cursor = 0usize;
    loop {
        // Merge the (already sorted) arrival trace with the event
        // heap; arrivals win ties (CLASS_ARRIVAL is the lowest class).
        let take_arrival = match (trace.get(cursor), engine.heap.peek()) {
            (Some(request), Some(event)) => {
                request.arrival_ms.total_cmp(&event.time) != Ordering::Greater
            }
            (Some(_), None) => true,
            (None, Some(_)) => false,
            (None, None) => break,
        };
        if take_arrival {
            let request = trace[cursor];
            let pre = engine.preassigned.as_ref().map(|a| a[cursor]);
            cursor += 1;
            engine.on_arrival(placement, request, pre)?;
        } else if let Some(event) = engine.heap.pop() {
            engine.on_event(placement, event)?;
        } else {
            break;
        }
    }
    Ok(engine.finish())
}

impl<'a> Engine<'a> {
    fn new(
        cluster: &'a ServeCluster,
        policy: &'a dyn BatchPolicy,
        config: &'a EngineConfig,
        trace: &[Request],
    ) -> Self {
        let shard_count = cluster.shard_count();
        let net_count = cluster.networks().len();
        // Reconfiguration pricing: pure integers off the backend's
        // cycle model, computed once per run (and only when the
        // feature is on — the default path never touches it).
        let net_shapes: Vec<Vec<sma_tensor::GemmShape>> = if config.reconfig.is_some() {
            cluster
                .networks()
                .iter()
                .map(sma_models::Network::gemm_shapes)
                .collect()
        } else {
            Vec::new()
        };
        let reconfig_shard = |shard: usize| -> Option<ReconfigShard> {
            let policy = config.reconfig?;
            let executor = cluster.shard_executor(shard);
            let backend = executor.backend();
            let rc = backend.as_reconfigurable()?;
            let cycles: Vec<Vec<u64>> = (0..rc.config_count())
                .map(|cfg| {
                    net_shapes
                        .iter()
                        .map(|shapes| rc.pinned_cycles(shapes, cfg))
                        .collect()
                })
                .collect();
            let penalty: Vec<Vec<f64>> = cycles
                .iter()
                .map(|row| {
                    net_shapes
                        .iter()
                        .zip(row)
                        .map(|(shapes, &pinned)| {
                            let flexible = rc.flexible_cycles(shapes).max(1);
                            pinned.max(flexible) as f64 / flexible as f64
                        })
                        .collect()
                })
                .collect();
            // The initial pin assumes a uniform mix (not counted as a
            // reconfiguration).
            let uniform = vec![1u64; net_count];
            Some(ReconfigShard {
                window: VecDeque::new(),
                window_cap: policy.window,
                every: policy.every as u64,
                admissions: 0,
                pinned: best_config(&cycles, &uniform),
                cycles,
                penalty,
            })
        };
        let shards: Vec<ShardState> = (0..shard_count)
            .map(|shard| ShardState {
                queues: vec![VecDeque::new(); net_count],
                future_per_net: vec![0; net_count],
                in_flight: None,
                epoch: 0,
                down_until: None,
                down_since: 0.0,
                degrade_depth: 0,
                degrade_factor: 1.0,
                stall_depth: 0,
                stall_extra_ms: 0.0,
                compile_fail_until: f64::NEG_INFINITY,
                pending_timer: f64::INFINITY,
                // Batch-1 service times come off the cluster's
                // pre-compiled plans (bit-identical to a fresh
                // compile).
                service_ms: cluster.unit_service_ms()[shard]
                    .iter()
                    .enumerate()
                    .map(|(net, &ms)| ((net, 1), ms))
                    .collect(),
                cache: PlanCache::new(config.cache_budget.for_shard(shard)),
                depth: 0,
                depth_max: 0,
                depth_integral_ms: 0.0,
                depth_last_ms: 0.0,
                reconfig: reconfig_shard(shard),
                report: ShardReport {
                    shard,
                    platform: cluster.platforms()[shard],
                    requests: Vec::new(),
                    batches: Vec::new(),
                    busy_ms: 0.0,
                    makespan_ms: 0.0,
                    plans_compiled: Vec::new(),
                    cache: PlanCacheStats::default(),
                    queue_depth_mean: 0.0,
                    queue_depth_max: 0,
                    fault: ShardFaultStats::default(),
                },
            })
            .collect();
        let mut global_future = vec![0usize; net_count];
        let mut max_class = 0usize;
        for request in trace {
            global_future[request.network] += 1;
            max_class = max_class.max(usize::from(request.class));
        }
        let num_classes = max_class + 1;
        // The frontier prices plans through the energy ledger only
        // when the autoscaler will actually consult it.
        let frontier = config
            .scale
            .filter(AutoscalePolicy::enabled)
            .map(|_| EnergyFrontier::from_cluster(cluster, &EnergyModel::volta()));
        Engine {
            cluster,
            policy,
            config,
            shards,
            heap: BinaryHeap::new(),
            seq: 0,
            rejected: Vec::new(),
            shed: Vec::new(),
            failed: Vec::new(),
            class_stats: vec![ClassFaultStats::default(); num_classes],
            served: BTreeSet::new(),
            failed_ids: BTreeSet::new(),
            attempts: BTreeMap::new(),
            global_future,
            preassigned: None,
            num_classes,
            preempted_ids: BTreeSet::new(),
            active: vec![true; shard_count],
            draining: vec![false; shard_count],
            up_streak: 0,
            down_streak: 0,
            scale_stats: ScaleStats::default(),
            frontier,
            mix_counts: vec![0; net_count],
            reconfig_stats: ReconfigStats::default(),
            live_queued: vec![0; shard_count],
            live_in_flight: vec![0; shard_count],
            live_resident: vec![0; shard_count],
            live_healthy: vec![true; shard_count],
            live_degrade: vec![1.0; shard_count],
        }
    }

    /// Whether the served-id set must be maintained: hedging,
    /// crash-retry and preemption can attempt to serve one id twice.
    fn track_ids(&self) -> bool {
        self.config.hedge.is_some()
            || self.config.preempt.is_some()
            || !self.config.faults.is_empty()
    }

    /// Seeds the autoscaler's first tick (a no-op when the feature is
    /// off or its energy headroom is zero — the static fleet schedules
    /// no control-plane events at all).
    fn schedule_first_scale_tick(&mut self) {
        if let Some(scale) = self.config.scale.filter(AutoscalePolicy::enabled) {
            self.push_event(scale.period_ms, CLASS_SCALE, 0, EventKind::ScaleTick);
        }
    }

    /// Legacy shim: run the placement over the whole trace up front,
    /// against a view whose live fields are all zero — exactly the
    /// pre-engine sequential admission pass.
    fn preassign(&mut self, placement: &mut dyn Placement, trace: &[Request]) {
        if self.config.admission != Admission::Preplaced {
            return;
        }
        let shard_count = self.shards.len();
        let zero_counts = vec![0usize; shard_count];
        let zero_bytes = vec![0u64; shard_count];
        let all_up = vec![true; shard_count];
        let no_degrade = vec![1.0f64; shard_count];
        let view = ClusterView {
            platforms: self.cluster.platforms(),
            unit_service_ms: self.cluster.unit_service_ms(),
            queued: &zero_counts,
            in_flight: &zero_counts,
            resident_plan_bytes: &zero_bytes,
            healthy: &all_up,
            degrade: &no_degrade,
        };
        let assigned: Vec<usize> = trace
            .iter()
            .map(|request| {
                let shard = placement.assign(request, &view);
                assert!(
                    shard < shard_count,
                    "placement routed request {} to shard {shard} of {shard_count}",
                    request.id
                );
                shard
            })
            .collect();
        for (request, &shard) in trace.iter().zip(&assigned) {
            self.shards[shard].future_per_net[request.network] += 1;
        }
        self.preassigned = Some(assigned);
    }

    /// Seeds the event queue with the configured fault schedule.
    fn schedule_faults(&mut self) {
        let shard_count = self.shards.len();
        for fault in self.config.faults.events() {
            assert!(
                fault.shard < shard_count,
                "fault plan targets shard {} of {shard_count}",
                fault.shard
            );
            let kind = match fault.kind {
                FaultKind::Crash { recover_ms } => EventKind::Crash { recover_ms },
                FaultKind::Degrade { factor, window_ms } => {
                    EventKind::DegradeStart { factor, window_ms }
                }
                FaultKind::StallCompile {
                    extra_ms,
                    window_ms,
                } => EventKind::StallStart {
                    extra_ms,
                    window_ms,
                },
                FaultKind::TransientCompileFail { window_ms } => {
                    EventKind::CompileFailStart { window_ms }
                }
            };
            self.push_event(fault.at_ms, CLASS_FAULT, fault.shard, kind);
        }
    }

    fn push_event(&mut self, time: f64, class: u8, shard: usize, kind: EventKind) {
        self.heap.push(Event {
            time,
            class,
            seq: self.seq,
            shard,
            kind,
        });
        self.seq += 1;
    }

    /// Whether a shard can dispatch right now.
    fn idle_and_up(&self, shard: usize) -> bool {
        let state = &self.shards[shard];
        state.in_flight.is_none() && state.down_until.is_none()
    }

    /// Whether `shard`'s cache budget can ever hold `network`'s plan.
    fn fits(&self, shard: usize, network: usize) -> bool {
        self.config
            .cache_budget
            .admits(shard, self.cluster.unit_plan_bytes()[shard][network])
    }

    /// Whether the autoscaler lets a shard take *new* placements
    /// (always true for the static fleet; draining and parked shards
    /// decline).
    fn accepting(&self, shard: usize) -> bool {
        self.active[shard] && !self.draining[shard]
    }

    /// Cluster-wide outstanding requests (queued + in flight).
    fn backlog(&self) -> usize {
        self.shards.iter().map(ShardState::outstanding).sum()
    }

    /// Rebuilds the live-view scratch buffers from shard state.
    fn refresh_live(&mut self) {
        for (shard, state) in self.shards.iter().enumerate() {
            self.live_queued[shard] = state.depth;
            self.live_in_flight[shard] = state.in_flight_len();
            self.live_resident[shard] = state.cache.resident_bytes;
            // Draining/parked shards read as unhealthy so
            // health-aware placements steer around them; the static
            // fleet (scale off) leaves this the pure crash gauge.
            self.live_healthy[shard] =
                state.down_until.is_none() && self.active[shard] && !self.draining[shard];
            self.live_degrade[shard] = if state.degrade_depth > 0 {
                state.degrade_factor
            } else {
                1.0
            };
        }
    }

    /// The live view over the scratch buffers ([`Engine::refresh_live`]
    /// first).
    fn live_view(&self) -> ClusterView<'_> {
        ClusterView {
            platforms: self.cluster.platforms(),
            unit_service_ms: self.cluster.unit_service_ms(),
            queued: &self.live_queued,
            in_flight: &self.live_in_flight,
            resident_plan_bytes: &self.live_resident,
            healthy: &self.live_healthy,
            degrade: &self.live_degrade,
        }
    }

    /// Enqueues one request on a shard. Without preemption this is the
    /// historical FIFO push; with preemption on, queues hold strict
    /// class order (stable FIFO within a class), so the dispatch head
    /// is always the most urgent admitted work.
    fn enqueue(&mut self, shard: usize, request: Request, now_ms: f64) {
        let strict = self.config.preempt.is_some();
        let state = &mut self.shards[shard];
        state.note_depth(now_ms, state.depth + 1);
        let queue = &mut state.queues[request.network];
        if strict {
            let pos = queue
                .iter()
                .take_while(|r| r.class <= request.class)
                .count();
            queue.insert(pos, request);
        } else {
            queue.push_back(request);
        }
    }

    /// Re-places a request online: the placement's choice if it fits
    /// and accepts, else the first fitting shard the autoscaler still
    /// lets accept, else any fitting shard (scaling never causes a
    /// rejection), else `None` (admission rejects).
    fn replace_online(
        &mut self,
        placement: &mut dyn Placement,
        request: &Request,
    ) -> Option<usize> {
        let shard_count = self.shards.len();
        self.refresh_live();
        let chosen = placement.assign(request, &self.live_view());
        assert!(
            chosen < shard_count,
            "placement routed request {} to shard {chosen} of {shard_count}",
            request.id
        );
        if self.fits(chosen, request.network) && self.accepting(chosen) {
            Some(chosen)
        } else {
            (0..shard_count)
                .find(|&shard| self.fits(shard, request.network) && self.accepting(shard))
                .or_else(|| (0..shard_count).find(|&shard| self.fits(shard, request.network)))
        }
    }

    /// One arrival: shed check, placement/admission, enqueue, hedge
    /// scheduling, preemption check, dispatch, and the online tail
    /// flush.
    fn on_arrival(
        &mut self,
        placement: &mut dyn Placement,
        request: Request,
        pre: Option<usize>,
    ) -> Result<(), RuntimeError> {
        let now_ms = request.arrival_ms;
        let shard_count = self.shards.len();
        self.global_future[request.network] -= 1;
        self.mix_counts[request.network] += 1;
        let online = pre.is_none();

        // Graceful degradation: under backlog pressure, shed by SLO
        // class before placement even runs (online admission only —
        // the legacy shim admits everything).
        let shed_now = online
            && self
                .config
                .shed
                .as_ref()
                .is_some_and(|p| p.sheds(request.class, self.num_classes, self.backlog()));

        let mut target: Option<usize> = None;
        if shed_now {
            self.shed.push(request);
        } else {
            target = match pre {
                Some(shard) => {
                    self.shards[shard].future_per_net[request.network] -= 1;
                    Some(shard)
                }
                // Admission control: the chosen shard must be able to
                // ever hold the request's plan (and, under
                // autoscaling, still be accepting); otherwise re-place
                // onto the first shard that can, else reject.
                None => self.replace_online(placement, &request),
            };
            match target {
                Some(shard) => {
                    self.enqueue(shard, request, now_ms);
                    if online {
                        // The traffic-mix window sees admissions only
                        // (never retries, hedges or preemption
                        // re-queues): decisions stay a pure function
                        // of (trace, placement).
                        if let Some(rc) = &mut self.shards[shard].reconfig {
                            rc.observe(request.network, &mut self.reconfig_stats);
                        }
                        if let Some(hedge) = self.config.hedge {
                            self.push_event(
                                now_ms + hedge.delay_ms,
                                CLASS_HEDGE,
                                shard,
                                EventKind::Hedge {
                                    request,
                                    origin: shard,
                                },
                            );
                        }
                        // Preemption: an arrival urgent enough to
                        // displace the running batch claims the shard
                        // via a fixed-slot event, so every
                        // same-instant completion/fault/recovery
                        // settles first (a batch completing at this
                        // exact instant completes — its Preempt goes
                        // stale).
                        if let (Some(preempt), Some(batch)) =
                            (self.config.preempt, &self.shards[shard].in_flight)
                        {
                            let victim_class = batch
                                .requests
                                .iter()
                                .map(|r| r.class)
                                .fold(u8::MAX, u8::min);
                            if preempt.preempts(request.class, victim_class) {
                                let epoch = batch.epoch;
                                self.push_event(
                                    now_ms,
                                    CLASS_PREEMPT,
                                    shard,
                                    EventKind::Preempt { epoch },
                                );
                            }
                        }
                    }
                    if self.idle_and_up(shard) {
                        self.attempt_dispatch(shard, now_ms)?;
                    }
                }
                None => self.rejected.push(request),
            }
        }
        // Online tail flush: the last arrival of a network is an
        // event for *every* shard still holding that network —
        // `more_arrivals` just flipped false cluster-wide, and
        // without this re-evaluation a size-triggered policy would
        // strand its stragglers.
        if online && self.global_future[request.network] == 0 {
            for shard in 0..shard_count {
                if target == Some(shard) {
                    continue; // already evaluated above
                }
                if self.idle_and_up(shard) && !self.shards[shard].queues[request.network].is_empty()
                {
                    self.attempt_dispatch(shard, now_ms)?;
                }
            }
        }
        Ok(())
    }

    /// Routes one popped event to its handler.
    fn on_event(
        &mut self,
        placement: &mut dyn Placement,
        event: Event,
    ) -> Result<(), RuntimeError> {
        let Event {
            time: now_ms,
            shard,
            kind,
            ..
        } = event;
        match kind {
            EventKind::Complete { epoch } => self.on_complete(shard, now_ms, epoch),
            EventKind::Timer => {
                let state = &mut self.shards[shard];
                if now_ms.to_bits() == state.pending_timer.to_bits() {
                    state.pending_timer = f64::INFINITY;
                }
                if self.idle_and_up(shard) {
                    self.attempt_dispatch(shard, now_ms)
                } else {
                    Ok(())
                }
            }
            EventKind::Crash { recover_ms } => {
                self.on_crash(shard, now_ms, recover_ms);
                Ok(())
            }
            EventKind::Recover => self.on_recover(shard, now_ms),
            EventKind::DegradeStart { factor, window_ms } => {
                {
                    let state = &mut self.shards[shard];
                    state.degrade_depth += 1;
                    // Overlapping windows: the most recent factor wins.
                    state.degrade_factor = factor;
                }
                self.push_event(
                    now_ms + window_ms,
                    CLASS_FAULT,
                    shard,
                    EventKind::DegradeEnd,
                );
                Ok(())
            }
            EventKind::DegradeEnd => {
                let state = &mut self.shards[shard];
                state.degrade_depth = state.degrade_depth.saturating_sub(1);
                if state.degrade_depth == 0 {
                    state.degrade_factor = 1.0;
                }
                Ok(())
            }
            EventKind::StallStart {
                extra_ms,
                window_ms,
            } => {
                {
                    let state = &mut self.shards[shard];
                    state.stall_depth += 1;
                    state.stall_extra_ms = extra_ms;
                }
                self.push_event(now_ms + window_ms, CLASS_FAULT, shard, EventKind::StallEnd);
                Ok(())
            }
            EventKind::StallEnd => {
                let state = &mut self.shards[shard];
                state.stall_depth = state.stall_depth.saturating_sub(1);
                if state.stall_depth == 0 {
                    state.stall_extra_ms = 0.0;
                }
                Ok(())
            }
            EventKind::CompileFailStart { window_ms } => {
                let state = &mut self.shards[shard];
                state.compile_fail_until = state.compile_fail_until.max(now_ms + window_ms);
                Ok(())
            }
            EventKind::Retry {
                request,
                from_shard,
            } => self.on_retry(placement, request, from_shard, now_ms),
            EventKind::Hedge { request, origin } => self.on_hedge(request, origin, now_ms),
            EventKind::Preempt { epoch } => self.on_preempt(shard, now_ms, epoch),
            EventKind::ScaleTick => self.on_scale_tick(now_ms),
        }
    }

    /// An urgent arrival evicts the running batch (unless the epoch is
    /// stale — the batch completed, or was already evicted, at this
    /// instant). Unlike a crash abort, the partial work is *billed*:
    /// the elapsed slice counts as busy time and is reported as
    /// preempted busy time, so preemption's cost is visible without
    /// ever double-counting (the victims' eventual completion bills
    /// its own full batch). Victims re-enter their queue behind more
    /// urgent work but ahead of their own class peers, preserving
    /// their mutual order.
    fn on_preempt(&mut self, shard: usize, now_ms: f64, epoch: u64) -> Result<(), RuntimeError> {
        {
            let state = &mut self.shards[shard];
            let Some(batch) = state.in_flight.take() else {
                return Ok(()); // already completed, crashed or evicted
            };
            if batch.epoch != epoch {
                state.in_flight = Some(batch); // stale: a newer batch runs
                return Ok(());
            }
            // A same-instant completion (class 1 < 6) would have fired
            // first, so the eviction always lands strictly before the
            // batch's completion: elapsed < compile + service.
            let elapsed_ms = now_ms - batch.start_ms;
            state.report.busy_ms += elapsed_ms;
            state.report.fault.preemptions += 1;
            state.report.fault.preempted_busy_ms += elapsed_ms;
            state.report.fault.preempted_requests += batch.requests.len() as u64;
            let victims = batch.requests;
            for victim in &victims {
                self.class_stats[usize::from(victim.class)].preempted += 1;
                self.preempted_ids.insert(victim.id);
            }
            // Reverse insertion at the class boundary keeps the
            // victims' mutual order while landing them after the
            // urgent work that displaced them.
            for victim in victims.iter().rev() {
                let queue = &mut state.queues[victim.network];
                let pos = queue.iter().take_while(|r| r.class < victim.class).count();
                queue.insert(pos, *victim);
            }
            state.note_depth(now_ms, state.depth + victims.len());
        }
        self.attempt_dispatch(shard, now_ms)
    }

    /// One autoscaler evaluation: complete finished drains, update the
    /// hysteresis streaks from the backlog-per-active-shard gauge, and
    /// act at most once — activate the cheapest eligible shard on a
    /// sustained high, drain the costliest on a sustained low.
    fn on_scale_tick(&mut self, now_ms: f64) -> Result<(), RuntimeError> {
        // Ticks are only scheduled when an enabled policy (and with
        // it the frontier) exists; the guards make that local.
        let Some(scale) = self.config.scale else {
            return Ok(());
        };
        #[allow(clippy::needless_range_loop)]
        for shard in 0..self.shards.len() {
            if self.draining[shard] && self.shards[shard].outstanding() == 0 {
                self.draining[shard] = false;
                self.active[shard] = false;
                self.scale_stats.drains_completed += 1;
            }
        }
        self.scale_stats.evaluations += 1;
        let active_count = self.active.iter().filter(|&&a| a).count().max(1);
        let load = self.backlog() as f64 / active_count as f64;
        if load >= scale.high_watermark {
            self.up_streak += 1;
        } else {
            self.up_streak = 0;
        }
        if load <= scale.low_watermark {
            self.down_streak += 1;
        } else {
            self.down_streak = 0;
        }
        let Some(frontier) = self.frontier.as_ref() else {
            return Ok(());
        };
        if self.up_streak >= scale.hysteresis_ticks {
            // Scale up: the cheapest shard (under the observed mix)
            // among those not currently accepting, gated by the energy
            // budget — never activate capacity the headroom cannot pay
            // for. Cancelling an in-progress drain beats powering a
            // parked shard (same index rule: cheapest wins).
            let budget = (1.0 + scale.energy_headroom) * frontier.frontier_cost(&self.mix_counts);
            let candidate = frontier.cheapest(
                &self.mix_counts,
                (0..self.shards.len()).filter(|&s| {
                    !self.accepting(s) && frontier.cost_per_request(s, &self.mix_counts) <= budget
                }),
            );
            if let Some(shard) = candidate {
                self.draining[shard] = false;
                self.active[shard] = true;
                self.scale_stats.scale_ups += 1;
                self.up_streak = 0;
                self.down_streak = 0;
                if self.shards[shard].depth > 0 && self.idle_and_up(shard) {
                    self.attempt_dispatch(shard, now_ms)?;
                }
            }
        } else if self.down_streak >= scale.hysteresis_ticks {
            // Scale down: drain the costliest accepting shard, never
            // below the floor. The drain finishes on a later tick once
            // the shard runs empty (drain-before-remove).
            let accepting_count = (0..self.shards.len())
                .filter(|&s| self.accepting(s))
                .count();
            if accepting_count > scale.min_active {
                let candidate = frontier.costliest(
                    &self.mix_counts,
                    (0..self.shards.len()).filter(|&s| self.accepting(s)),
                );
                if let Some(shard) = candidate {
                    self.draining[shard] = true;
                    self.scale_stats.scale_downs += 1;
                    self.up_streak = 0;
                    self.down_streak = 0;
                }
            }
        }
        // Re-arm while there is anything left to observe: future
        // arrivals, outstanding work, or an unfinished drain.
        let more = self.global_future.iter().sum::<usize>() > 0
            || self.backlog() > 0
            || self.draining.iter().any(|&d| d);
        if more {
            self.push_event(
                now_ms + scale.period_ms,
                CLASS_SCALE,
                0,
                EventKind::ScaleTick,
            );
        }
        Ok(())
    }

    /// A batch finished (unless a crash aborted it first — then the
    /// epoch is stale and the event is a no-op).
    fn on_complete(&mut self, shard: usize, now_ms: f64, epoch: u64) -> Result<(), RuntimeError> {
        let track = self.track_ids();
        let mut newly_served: Vec<u64> = Vec::new();
        {
            let state = &mut self.shards[shard];
            let Some(batch) = state.in_flight.take() else {
                return Ok(()); // aborted by a crash, shard idle since
            };
            if batch.epoch != epoch {
                state.in_flight = Some(batch); // stale event, newer batch running
                return Ok(());
            }
            let size = batch.requests.len();
            state.report.batches.push(BatchRecord {
                network: batch.network,
                size,
                start_ms: batch.start_ms,
                service_ms: batch.service_ms,
                compile_ms: batch.compile_ms,
            });
            for request in &batch.requests {
                if track {
                    if !self.served.insert(request.id) {
                        // A hedge twin already won: this completion is
                        // billed (busy time above) but not served.
                        continue;
                    }
                    newly_served.push(request.id);
                    self.failed_ids.remove(&request.id);
                }
                state.report.requests.push(ServedRequest {
                    id: request.id,
                    network: request.network,
                    arrival_ms: request.arrival_ms,
                    deadline_ms: request.deadline_ms,
                    class: request.class,
                    start_ms: batch.start_ms,
                    completion_ms: now_ms,
                    batch_size: size,
                });
            }
            state.report.busy_ms += batch.compile_ms + batch.service_ms;
            state.report.makespan_ms = now_ms;
        }
        // First completion wins: queued hedge twins of the ids just
        // served are cancelled cluster-wide.
        if self.config.hedge.is_some() && !newly_served.is_empty() {
            self.cancel_queued(&newly_served, now_ms);
        }
        self.attempt_dispatch(shard, now_ms)
    }

    /// Removes queued twins of just-served ids from every queue.
    fn cancel_queued(&mut self, ids: &[u64], now_ms: f64) {
        for state in &mut self.shards {
            let mut removed = 0usize;
            for queue in &mut state.queues {
                let before = queue.len();
                queue.retain(|r| !ids.contains(&r.id));
                removed += before - queue.len();
            }
            if removed > 0 {
                state.note_depth(now_ms, state.depth - removed);
            }
        }
    }

    /// A crash fires: the shard goes dark, the in-flight batch is
    /// aborted and its requests enter retry.
    fn on_crash(&mut self, shard: usize, now_ms: f64, recover_ms: f64) {
        let until = now_ms + recover_ms;
        let schedule_recover = {
            let state = &mut self.shards[shard];
            state.report.fault.crashes += 1;
            match state.down_until {
                None => {
                    state.down_since = now_ms;
                    state.down_until = Some(until);
                    true
                }
                Some(current) if until > current => {
                    // Overlapping crash extends the outage; the
                    // earlier recovery event goes stale.
                    state.down_until = Some(until);
                    true
                }
                Some(_) => false,
            }
        };
        if schedule_recover {
            self.push_event(until, CLASS_FAULT, shard, EventKind::Recover);
        }
        if let Some(batch) = self.shards[shard].in_flight.take() {
            self.shards[shard].report.fault.aborted_batches += 1;
            // Aborted work is lost: not billed as busy time, no batch
            // or request records. The victims follow the retry policy.
            for request in batch.requests {
                self.retry_or_fail(request, now_ms, shard);
            }
        }
    }

    /// The recovery instant arrives (stale if a later crash extended
    /// the outage).
    fn on_recover(&mut self, shard: usize, now_ms: f64) -> Result<(), RuntimeError> {
        {
            let state = &mut self.shards[shard];
            if state.down_until.map(f64::to_bits) != Some(now_ms.to_bits()) {
                return Ok(()); // stale: a later crash extended the outage
            }
            state.down_until = None;
            state.report.fault.downtime_ms += now_ms - state.down_since;
        }
        self.attempt_dispatch(shard, now_ms)
    }

    /// Schedules a retry for a crash victim, or abandons it once the
    /// policy is exhausted.
    fn retry_or_fail(&mut self, request: Request, now_ms: f64, from_shard: usize) {
        if self.served.contains(&request.id) {
            return; // a hedge twin already completed it
        }
        let retries_so_far = self.attempts.get(&request.id).copied().unwrap_or(0);
        let retry = &self.config.retry;
        let fire_ms = now_ms + retry.backoff_ms(retries_so_far + 1);
        let within_timeout = fire_ms - request.arrival_ms <= retry.timeout_for(request.class);
        if !retry.allows(retries_so_far) || !within_timeout {
            if self.failed_ids.insert(request.id) {
                self.failed.push(request);
            }
            return;
        }
        self.attempts.insert(request.id, retries_so_far + 1);
        self.class_stats[usize::from(request.class)].retries += 1;
        self.shards[from_shard].report.fault.retries += 1;
        self.push_event(
            fire_ms,
            CLASS_RETRY,
            from_shard,
            EventKind::Retry {
                request,
                from_shard,
            },
        );
    }

    /// A retry fires: re-place the request (online: against the live
    /// view, so healthy siblings win — failover; preplaced: back to
    /// the same shard) and enqueue it.
    fn on_retry(
        &mut self,
        placement: &mut dyn Placement,
        request: Request,
        from_shard: usize,
        now_ms: f64,
    ) -> Result<(), RuntimeError> {
        if self.served.contains(&request.id) {
            return Ok(()); // a twin won while the backoff elapsed
        }
        let target = match &self.preassigned {
            Some(_) => Some(from_shard),
            None => self.replace_online(placement, &request),
        };
        let Some(target) = target else {
            if self.failed_ids.insert(request.id) {
                self.failed.push(request);
            }
            return Ok(());
        };
        if target != from_shard {
            self.class_stats[usize::from(request.class)].failovers += 1;
            self.shards[target].report.fault.failovers += 1;
        }
        self.enqueue(target, request, now_ms);
        if self.idle_and_up(target) {
            self.attempt_dispatch(target, now_ms)
        } else {
            Ok(())
        }
    }

    /// A hedge delay expired with the request still incomplete:
    /// enqueue a duplicate on the second-best healthy shard.
    fn on_hedge(
        &mut self,
        request: Request,
        origin: usize,
        now_ms: f64,
    ) -> Result<(), RuntimeError> {
        if self.served.contains(&request.id) {
            return Ok(()); // completed in time, nothing to hedge
        }
        let net = request.network;
        let costs = self.cluster.unit_service_ms();
        let target = (0..self.shards.len())
            .filter(|&s| {
                s != origin
                    && self.shards[s].down_until.is_none()
                    && self.accepting(s)
                    && self.fits(s, net)
            })
            .min_by(|&a, &b| costs[a][net].total_cmp(&costs[b][net]).then(a.cmp(&b)));
        let Some(target) = target else {
            return Ok(()); // nowhere to hedge to; the original stands
        };
        self.class_stats[usize::from(request.class)].hedges += 1;
        self.shards[target].report.fault.hedges += 1;
        self.enqueue(target, request, now_ms);
        if self.idle_and_up(target) {
            self.attempt_dispatch(target, now_ms)
        } else {
            Ok(())
        }
    }

    /// Evaluates every non-empty queue of an idle, healthy shard at
    /// `now_ms` and either launches the most urgent ready batch or
    /// schedules the earliest batch-close timer. The decision rule
    /// matches the pre-engine drain exactly: ready queues race on
    /// [`BatchPolicy::urgency`] (default: head arrival — FIFO across
    /// networks), ties to the lowest network index. During a transient
    /// compile-failure window, ready batches whose plan is not
    /// resident are blocked and the next-best resident-plan batch
    /// launches instead (or the shard wakes when the window closes).
    fn attempt_dispatch(&mut self, shard: usize, now_ms: f64) -> Result<(), RuntimeError> {
        if !self.idle_and_up(shard) {
            return Ok(());
        }
        // (head class, urgency, net, take) — the class key is 0 for
        // every queue unless preemption (strict priorities) is on, so
        // the sort below degenerates to the historical (urgency, net)
        // rule byte for byte.
        let strict = self.config.preempt.is_some();
        let mut ready: Vec<(u8, f64, usize, usize)> = Vec::new();
        let mut wake_ms = f64::INFINITY;
        {
            let state = &mut self.shards[shard];
            for net in 0..state.queues.len() {
                if state.queues[net].is_empty() {
                    continue;
                }
                let more_arrivals = match &self.preassigned {
                    Some(_) => state.future_per_net[net] > 0,
                    None => self.global_future[net] > 0,
                };
                // O(1) when the ring has not wrapped since the last
                // front drain; policies see a plain FIFO slice.
                let contiguous: &[Request] = state.queues[net].make_contiguous();
                match self.policy.decide(contiguous, now_ms, more_arrivals) {
                    PolicyDecision::Dispatch { take } => {
                        let take = take.clamp(1, contiguous.len());
                        let urgency = self.policy.urgency(contiguous, now_ms);
                        let class = if strict { contiguous[0].class } else { 0 };
                        ready.push((class, urgency, net, take));
                    }
                    PolicyDecision::WaitUntil(at) => wake_ms = wake_ms.min(at),
                    PolicyDecision::WaitForArrivals => {}
                }
            }
        }
        // Strict class order first (preemption only), then most urgent
        // first; stable sort keeps the lowest network index on ties —
        // the pre-engine drain's rule.
        ready.sort_by(|a, b| a.0.cmp(&b.0).then(a.1.total_cmp(&b.1)).then(a.2.cmp(&b.2)));
        let fail_active = now_ms < self.shards[shard].compile_fail_until;
        let mut blocked = false;
        for &(_, _, net, take) in &ready {
            if fail_active && !self.shards[shard].cache.contains(&(net, take)) {
                blocked = true; // compile would fail; try the next queue
                continue;
            }
            return self.dispatch(shard, now_ms, net, take);
        }
        if blocked {
            self.shards[shard].report.fault.compile_failures += 1;
            wake_ms = wake_ms.min(self.shards[shard].compile_fail_until);
        }
        if wake_ms.is_finite() {
            // A batch-close event: without it, a queue whose deadline
            // expires between arrivals would stay open until the next
            // arrival happened by (the off-by-one-event bug).
            assert!(
                wake_ms > now_ms,
                "shard {shard} stalled at {now_ms} ms (policy asked to wait for the past)"
            );
            if wake_ms < self.shards[shard].pending_timer {
                self.shards[shard].pending_timer = wake_ms;
                self.push_event(wake_ms, CLASS_TIMER, shard, EventKind::Timer);
            }
        }
        Ok(())
    }

    /// Launches one batch: memoized service time (first touch compiles
    /// through the executor), degrade multiplier, compile-on-miss
    /// charge (plus any stall surcharge), and the completion event.
    fn dispatch(
        &mut self,
        shard: usize,
        now_ms: f64,
        net: usize,
        take: usize,
    ) -> Result<(), RuntimeError> {
        let cluster = self.cluster;
        let state = &mut self.shards[shard];
        let service_base = match state.service_ms.entry((net, take)) {
            std::collections::btree_map::Entry::Occupied(hit) => *hit.get(),
            std::collections::btree_map::Entry::Vacant(slot) => {
                let plan = cluster
                    .shard_executor(shard)
                    .with_batch(take)
                    .try_plan(&cluster.networks()[net])?;
                state.report.plans_compiled.push((net, take));
                *slot.insert(plan.run().total_ms)
            }
        };
        // FlexSA-style reduced mode: inside a degrade window the batch
        // runs slower by the live factor. (Guarded so the fault-free
        // path performs the exact same float ops as before.)
        let degraded = state.degrade_depth > 0;
        let mut service_ms = if degraded {
            service_base * state.degrade_factor
        } else {
            service_base
        };
        // Serve-time reconfiguration: the pinned fabric configuration
        // pays its latency penalty relative to per-shape-best. (Also
        // guarded — `None` performs no float ops at all.)
        if let Some(rc) = &state.reconfig {
            service_ms *= rc.penalty[rc.pinned][net];
        }
        // Simulated plan residency: a miss bills the compile before
        // the batch starts (0 under the legacy shim's free compiles);
        // an active stall window adds its surcharge per miss.
        let mut compile_charge =
            self.config.compile_ms_per_layer * cluster.unit_plan(shard, net).layer_count() as f64;
        if state.stall_depth > 0 {
            compile_charge += state.stall_extra_ms;
        }
        let compile_ms = state.cache.access(
            (net, take),
            cluster.unit_plan_bytes()[shard][net],
            compile_charge,
        );
        let completion_ms = now_ms + compile_ms + service_ms;
        let requests: Vec<Request> = state.queues[net].drain(..take).collect();
        state.note_depth(now_ms, state.depth - take);
        state.epoch += 1;
        let epoch = state.epoch;
        if degraded {
            state.report.fault.degraded_batches += 1;
        }
        state.in_flight = Some(InFlightBatch {
            network: net,
            start_ms: now_ms,
            compile_ms,
            service_ms,
            epoch,
            requests,
        });
        self.push_event(
            completion_ms,
            CLASS_COMPLETE,
            shard,
            EventKind::Complete { epoch },
        );
        Ok(())
    }

    /// Closes the run: depth integrals, cache stats, the drain assert,
    /// and the exact-partition cleanup of the failed bucket.
    fn finish(mut self) -> ServeRun {
        // The cluster-wide horizon closes every shard's depth
        // integral.
        let makespan_ms = self
            .shards
            .iter()
            .map(|state| state.report.makespan_ms)
            .fold(0.0_f64, f64::max);
        let reports: Vec<ShardReport> = self
            .shards
            .into_iter()
            .enumerate()
            .map(|(shard, mut state)| {
                assert!(
                    state.queues.iter().all(VecDeque::is_empty),
                    "shard {shard} stalled with queued requests (policy never became ready)"
                );
                assert!(
                    state.in_flight.is_none(),
                    "shard {shard} finished with a batch still in flight"
                );
                state.note_depth(state.depth_last_ms.max(makespan_ms), 0);
                state.report.queue_depth_mean = if makespan_ms > 0.0 {
                    state.depth_integral_ms / makespan_ms
                } else {
                    0.0
                };
                state.report.queue_depth_max = state.depth_max;
                state.report.cache = state.cache.into_stats();
                state.report
            })
            .collect();
        // A request that failed its retries but whose hedge twin later
        // completed anyway is served, not failed — keep the four
        // buckets an exact partition of the trace.
        let served = &self.served;
        self.failed.retain(|request| !served.contains(&request.id));
        self.scale_stats.final_active = (0..self.active.len())
            .filter(|&shard| self.active[shard] && !self.draining[shard])
            .count();
        ServeRun {
            reports,
            rejected: self.rejected,
            shed: self.shed,
            failed: self.failed,
            class_stats: self.class_stats,
            preempted: self.preempted_ids.into_iter().collect(),
            scale: self.scale_stats,
            reconfig: self.reconfig_stats,
        }
    }
}

#[cfg(test)]
mod tests {
    // Exact float equality in these tests asserts bit-reproducibility
    // of exactly-representable values; an epsilon would weaken them.
    #![allow(clippy::float_cmp)]

    use super::*;

    #[test]
    fn plan_cache_lru_evicts_the_coldest_plan() {
        let mut cache = PlanCache::new(Some(100));
        assert_eq!(cache.access((0, 1), 40, 2.0), 2.0, "cold miss bills");
        assert_eq!(cache.access((1, 1), 40, 2.0), 2.0);
        assert_eq!(cache.access((0, 1), 40, 2.0), 0.0, "hit is free");
        // Admitting a third 40B plan exceeds 100B: the LRU victim is
        // (1,1) — (0,1) was touched more recently.
        assert_eq!(cache.access((2, 1), 40, 2.0), 2.0);
        assert_eq!(cache.access((0, 1), 40, 2.0), 0.0, "(0,1) survived");
        assert_eq!(cache.access((1, 1), 40, 2.0), 2.0, "(1,1) was evicted");
        let stats = cache.into_stats();
        assert_eq!(stats.hits + stats.misses, stats.lookups);
        assert_eq!(stats.evictions, 2);
        assert!(stats.peak_bytes <= 100);
        assert_eq!(stats.resident_bytes, 80);
    }

    #[test]
    fn plan_cache_unbounded_never_evicts() {
        let mut cache = PlanCache::new(None);
        for net in 0..50 {
            assert_eq!(cache.access((net, 1), 1 << 20, 1.0), 1.0);
            assert_eq!(cache.access((net, 1), 1 << 20, 1.0), 0.0);
        }
        let stats = cache.into_stats();
        assert_eq!(stats.evictions, 0);
        assert_eq!(stats.misses, 50);
        assert_eq!(stats.hits, 50);
        assert_eq!(stats.resident_bytes, 50 << 20);
    }

    #[test]
    fn plan_cache_contains_peeks_without_billing() {
        let mut cache = PlanCache::new(Some(100));
        assert!(!cache.contains(&(0, 1)));
        cache.access((0, 1), 40, 2.0);
        assert!(cache.contains(&(0, 1)));
        let stats = cache.into_stats();
        assert_eq!(stats.lookups, 1, "contains() is not a lookup");
    }

    #[test]
    fn oversized_plan_empties_the_cache_but_still_runs() {
        let mut cache = PlanCache::new(Some(64));
        cache.access((0, 1), 30, 1.0);
        cache.access((1, 1), 30, 1.0);
        // 100 > 64: everything is evicted, the plan is admitted anyway
        // (admission control keeps this out of online runs).
        assert_eq!(cache.access((2, 1), 100, 1.0), 1.0);
        let stats = cache.into_stats();
        assert_eq!(stats.evictions, 2);
        assert_eq!(stats.resident_bytes, 100);
    }

    #[test]
    fn cache_budget_admission() {
        assert!(CacheBudget::Unbounded.admits(3, u64::MAX));
        assert!(CacheBudget::Uniform(10).admits(0, 10));
        assert!(!CacheBudget::Uniform(10).admits(0, 11));
        let per = CacheBudget::PerShard(vec![5, 50]);
        assert!(!per.admits(0, 20));
        assert!(per.admits(1, 20));
        assert_eq!(CacheBudget::Uniform(32 * 1024).label(), "32KiB");
    }

    #[test]
    fn events_order_by_time_class_then_seq() {
        let mut heap = BinaryHeap::new();
        let ev = |time, class, seq| Event {
            time,
            class,
            seq,
            shard: 0,
            kind: EventKind::Timer,
        };
        heap.push(ev(5.0, CLASS_TIMER, 0));
        heap.push(ev(5.0, CLASS_COMPLETE, 1));
        heap.push(ev(4.0, CLASS_TIMER, 2));
        heap.push(ev(5.0, CLASS_COMPLETE, 3));
        heap.push(ev(5.0, CLASS_FAULT, 4));
        heap.push(ev(5.0, CLASS_HEDGE, 5));
        heap.push(ev(5.0, CLASS_RETRY, 6));
        heap.push(ev(5.0, CLASS_SCALE, 7));
        heap.push(ev(5.0, CLASS_PREEMPT, 8));
        let order: Vec<(f64, u8, u64)> = std::iter::from_fn(|| heap.pop())
            .map(|e| (e.time, e.class, e.seq))
            .collect();
        assert_eq!(
            order,
            vec![
                (4.0, CLASS_TIMER, 2),
                (5.0, CLASS_COMPLETE, 1),
                (5.0, CLASS_COMPLETE, 3),
                (5.0, CLASS_TIMER, 0),
                (5.0, CLASS_FAULT, 4),
                (5.0, CLASS_RETRY, 6),
                (5.0, CLASS_HEDGE, 5),
                (5.0, CLASS_PREEMPT, 8),
                (5.0, CLASS_SCALE, 7),
            ],
            "completions before timers before faults before retries before \
             hedges before preemptions before scale ticks"
        );
    }

    #[test]
    fn best_config_minimises_weighted_cycles_with_low_index_ties() {
        // config 0 wins net 0, config 1 wins net 1.
        let cycles = vec![vec![10, 100], vec![50, 20]];
        assert_eq!(best_config(&cycles, &[1, 0]), 0);
        assert_eq!(best_config(&cycles, &[0, 1]), 1);
        // 3×10 + 1×100 = 130 vs 3×50 + 1×20 = 170.
        assert_eq!(best_config(&cycles, &[3, 1]), 0);
        // Exact tie: lowest index wins.
        assert_eq!(best_config(&[vec![5], vec![5]], &[7]), 0);
        // Empty window: everything is zero cost — lowest index.
        assert_eq!(best_config(&cycles, &[0, 0]), 0);
    }
}
