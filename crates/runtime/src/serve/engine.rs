//! The discrete-event serving engine.
//!
//! One deterministic event queue drives the whole cluster: **arrival**
//! events admit requests (invoking the [`Placement`] online, with a
//! live [`ClusterView`]), **batch-close** events fire at the instant a
//! [`BatchPolicy`] named in a [`PolicyDecision::WaitUntil`], and
//! **service-complete** events free a shard and let it dispatch again.
//! Events are totally ordered by `(time, class, sequence)` — time via
//! `f64::total_cmp`, arrivals before completions before timers at
//! equal instants, and a monotone sequence number last — so a run is a
//! pure function of its inputs: byte-identical across repeats,
//! machines and worker-thread counts.
//!
//! Two admission modes bound the refactor:
//!
//! * [`Admission::Online`] (default): placement sees the live cluster
//!   (backlog, in-flight batches, plan-cache residency) at each
//!   arrival, and the admission controller re-places or rejects
//!   requests whose plan cannot fit the target shard's cache budget.
//! * [`Admission::Preplaced`] is the legacy-parity shim: placement
//!   runs over the whole trace up front against a zeroed view, exactly
//!   like the pre-engine sequential admission pass. Under an unbounded
//!   cache and zero compile cost the engine reproduces the
//!   three-phase pipeline's outcomes bit for bit (pinned by
//!   `tests/serve_engine.rs`).
//!
//! Plan memory is simulated per shard by a capacity-bounded LRU cache
//! keyed on `(network, batch)` and charged with
//! [`NetworkPlan::mem_bytes`](crate::NetworkPlan::mem_bytes); a miss
//! bills `compile_ms_per_layer × layers` of simulated latency before
//! the batch starts executing.

use super::load::Request;
use super::metrics::PlanCacheStats;
use super::placement::{ClusterView, Placement};
use super::policy::{BatchPolicy, PolicyDecision};
use super::{BatchRecord, ServeCluster, ServedRequest, ShardReport};
use crate::backend::RuntimeError;
use std::cmp::Ordering;
use std::collections::{BTreeMap, BinaryHeap, VecDeque};

/// When the [`Placement`] is consulted and what it may see.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// Placement runs at each request's arrival event with the live
    /// [`ClusterView`]; requests whose plan cannot fit the chosen
    /// shard's cache budget are re-placed (first fitting shard in
    /// index order) or rejected.
    Online,
    /// Legacy-parity shim: placement runs over the whole trace before
    /// the clock starts, against a view whose live fields are zero —
    /// the pre-engine sequential admission pass. No admission control.
    Preplaced,
}

/// Per-shard plan-cache capacity.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CacheBudget {
    /// No bound: every compiled plan stays resident (the legacy
    /// behaviour).
    Unbounded,
    /// The same byte budget on every shard.
    Uniform(u64),
    /// An explicit byte budget per shard (must be one entry per
    /// shard).
    PerShard(Vec<u64>),
}

impl CacheBudget {
    /// The byte budget of one shard (`None` = unbounded).
    #[must_use]
    pub fn for_shard(&self, shard: usize) -> Option<u64> {
        match self {
            CacheBudget::Unbounded => None,
            CacheBudget::Uniform(bytes) => Some(*bytes),
            CacheBudget::PerShard(bytes) => bytes.get(shard).copied(),
        }
    }

    /// Whether a plan of `bytes` can ever be resident on `shard`.
    #[must_use]
    pub fn admits(&self, shard: usize, bytes: u64) -> bool {
        self.for_shard(shard).is_none_or(|budget| bytes <= budget)
    }

    /// Report label (`unbounded`, `32KiB`, `per-shard`).
    #[must_use]
    pub fn label(&self) -> String {
        match self {
            CacheBudget::Unbounded => "unbounded".into(),
            CacheBudget::Uniform(bytes) => format!("{}KiB", bytes / 1024),
            CacheBudget::PerShard(_) => "per-shard".into(),
        }
    }
}

/// Engine knobs: admission mode, plan-cache capacity, compile cost.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// When placement decides and what it sees.
    pub admission: Admission,
    /// Per-shard plan-cache capacity.
    pub cache_budget: CacheBudget,
    /// Simulated milliseconds billed per network layer when a batch's
    /// plan misses the shard's plan cache (compile-on-miss latency).
    pub compile_ms_per_layer: f64,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            admission: Admission::Online,
            cache_budget: CacheBudget::Unbounded,
            compile_ms_per_layer: 0.0,
        }
    }
}

impl EngineConfig {
    /// The legacy-parity shim: preplaced admission, unbounded cache,
    /// free compiles. Under this configuration the event engine
    /// reproduces the pre-engine three-phase pipeline bit for bit.
    #[must_use]
    pub fn legacy() -> Self {
        EngineConfig {
            admission: Admission::Preplaced,
            cache_budget: CacheBudget::Unbounded,
            compile_ms_per_layer: 0.0,
        }
    }

    /// This configuration with a different cache budget.
    #[must_use]
    pub fn with_cache_budget(mut self, budget: CacheBudget) -> Self {
        self.cache_budget = budget;
        self
    }

    /// This configuration with a different compile-on-miss cost.
    #[must_use]
    pub fn with_compile_cost(mut self, ms_per_layer: f64) -> Self {
        self.compile_ms_per_layer = ms_per_layer.max(0.0);
        self
    }
}

/// Everything one engine run produced: per-shard reports (shard
/// order) and the requests the admission controller turned away.
#[derive(Debug, Clone)]
pub struct ServeRun {
    /// One report per shard, in shard order.
    pub reports: Vec<ShardReport>,
    /// Requests rejected at admission (no shard's cache budget could
    /// ever hold their plan), in arrival order. Empty under
    /// [`Admission::Preplaced`] or an unbounded budget.
    pub rejected: Vec<Request>,
}

/// Capacity-bounded LRU over simulated plan residency, keyed on
/// `(network, batch)`.
#[derive(Debug)]
struct PlanCache {
    budget: Option<u64>,
    /// `(bytes, last_use)` per resident plan; `last_use` ticks are
    /// unique, so the LRU victim is always unambiguous.
    entries: BTreeMap<(usize, usize), (u64, u64)>,
    resident_bytes: u64,
    tick: u64,
    stats: PlanCacheStats,
}

impl PlanCache {
    fn new(budget: Option<u64>) -> Self {
        PlanCache {
            budget,
            entries: BTreeMap::new(),
            resident_bytes: 0,
            tick: 0,
            stats: PlanCacheStats::default(),
        }
    }

    /// Looks up (and on miss admits) a plan, returning the simulated
    /// compile charge: 0 on a hit, `compile_ms` on a miss. Eviction is
    /// LRU until the new plan fits; a plan larger than the whole
    /// budget empties the cache and is admitted anyway (the admission
    /// controller keeps such requests out under [`Admission::Online`],
    /// so this only arises when a caller opts out of admission
    /// control).
    fn access(&mut self, key: (usize, usize), bytes: u64, compile_ms: f64) -> f64 {
        self.stats.lookups += 1;
        self.tick += 1;
        if let Some((_, last_use)) = self.entries.get_mut(&key) {
            *last_use = self.tick;
            self.stats.hits += 1;
            return 0.0;
        }
        self.stats.misses += 1;
        if let Some(budget) = self.budget {
            while self.resident_bytes + bytes > budget && !self.entries.is_empty() {
                let victim = *self
                    .entries
                    .iter()
                    .min_by_key(|(_, &(_, last_use))| last_use)
                    .map(|(k, _)| k)
                    // sma-lint: allow(no-panic) — the loop guard
                    // just checked !entries.is_empty().
                    .expect("non-empty cache has an LRU victim");
                // sma-lint: allow(no-panic) — victim was read out of
                // this map two lines up; no intervening mutation.
                let (evicted_bytes, _) = self.entries.remove(&victim).expect("victim resident");
                self.resident_bytes -= evicted_bytes;
                self.stats.evictions += 1;
            }
        }
        self.entries.insert(key, (bytes, self.tick));
        self.resident_bytes += bytes;
        self.stats.peak_bytes = self.stats.peak_bytes.max(self.resident_bytes);
        compile_ms
    }

    fn into_stats(mut self) -> PlanCacheStats {
        self.stats.resident_bytes = self.resident_bytes;
        self.stats
    }
}

/// Event classes, in same-instant processing order: arrivals (class 0,
/// merged straight from the sorted trace rather than the heap) enqueue
/// before a completion evaluates (the pre-engine drain admitted
/// `arrival_ms <= now` before deciding), and completions free the
/// shard before a stale timer re-evaluates.
const CLASS_COMPLETE: u8 = 1;
const CLASS_TIMER: u8 = 2;

/// One queued engine event. Ordering is ascending `(time, class,
/// seq)`; `seq` is a global push counter, so ties are broken by
/// creation order and the queue is a total order.
#[derive(Debug, Clone, Copy)]
struct Event {
    time: f64,
    class: u8,
    seq: u64,
    shard: usize,
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for Event {}
impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Event {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the earliest
        // event on top.
        other
            .time
            .total_cmp(&self.time)
            .then(other.class.cmp(&self.class))
            .then(other.seq.cmp(&self.seq))
    }
}

/// Live state of one shard inside the event loop.
struct ShardState {
    /// Per-network FIFO queues of admitted-but-undispatched requests.
    queues: Vec<VecDeque<Request>>,
    /// Preplaced mode: arrivals still to come for this shard, per
    /// network (the oracle the legacy drain exposed to policies).
    future_per_net: Vec<usize>,
    /// Completion instant of the in-flight batch (`None` = idle).
    busy_until: Option<f64>,
    /// Size of the in-flight batch (0 when idle).
    in_flight: usize,
    /// Earliest batch-close timer currently scheduled (dedup only —
    /// stale timers are harmless, they just re-evaluate).
    pending_timer: f64,
    /// Memoized `(network, batch) → service ms`; first touch compiles
    /// the plan through the executor.
    service_ms: BTreeMap<(usize, usize), f64>,
    cache: PlanCache,
    /// Live queued-request count (all networks).
    depth: usize,
    depth_max: usize,
    /// `∫ depth dt` for the time-weighted mean queue depth.
    depth_integral_ms: f64,
    depth_last_ms: f64,
    report: ShardReport,
}

impl ShardState {
    /// Records a queue-depth change at `now` (time-weighted).
    fn note_depth(&mut self, now_ms: f64, depth: usize) {
        self.depth_integral_ms += self.depth as f64 * (now_ms - self.depth_last_ms);
        self.depth_last_ms = now_ms;
        self.depth = depth;
        self.depth_max = self.depth_max.max(depth);
    }
}

/// The engine proper. Consumes the placement's mutable state for one
/// run; everything else is borrowed immutably, so distinct runs (and
/// distinct combos in the benchmark matrix) share one compiled
/// [`ServeCluster`].
pub(super) fn run_engine(
    cluster: &ServeCluster,
    policy: &dyn BatchPolicy,
    placement: &mut dyn Placement,
    trace: &[Request],
    config: &EngineConfig,
) -> Result<ServeRun, RuntimeError> {
    let shard_count = cluster.shard_count();
    let net_count = cluster.networks().len();
    if let CacheBudget::PerShard(budgets) = &config.cache_budget {
        assert_eq!(
            budgets.len(),
            shard_count,
            "per-shard cache budget needs one entry per shard"
        );
    }

    let mut shards: Vec<ShardState> = (0..shard_count)
        .map(|shard| ShardState {
            queues: vec![VecDeque::new(); net_count],
            future_per_net: vec![0; net_count],
            busy_until: None,
            in_flight: 0,
            pending_timer: f64::INFINITY,
            // Batch-1 service times come off the cluster's
            // pre-compiled plans (bit-identical to a fresh compile).
            service_ms: cluster.unit_service_ms()[shard]
                .iter()
                .enumerate()
                .map(|(net, &ms)| ((net, 1), ms))
                .collect(),
            cache: PlanCache::new(config.cache_budget.for_shard(shard)),
            depth: 0,
            depth_max: 0,
            depth_integral_ms: 0.0,
            depth_last_ms: 0.0,
            report: ShardReport {
                shard,
                platform: cluster.platforms()[shard],
                requests: Vec::new(),
                batches: Vec::new(),
                busy_ms: 0.0,
                makespan_ms: 0.0,
                plans_compiled: Vec::new(),
                cache: PlanCacheStats::default(),
                queue_depth_mean: 0.0,
                queue_depth_max: 0,
            },
        })
        .collect();

    // Legacy shim: run the placement over the whole trace up front,
    // against a view whose live fields are all zero — exactly the
    // pre-engine sequential admission pass.
    let preassigned: Option<Vec<usize>> = match config.admission {
        Admission::Online => None,
        Admission::Preplaced => {
            let zero_counts = vec![0usize; shard_count];
            let zero_bytes = vec![0u64; shard_count];
            let view = ClusterView {
                platforms: cluster.platforms(),
                unit_service_ms: cluster.unit_service_ms(),
                queued: &zero_counts,
                in_flight: &zero_counts,
                resident_plan_bytes: &zero_bytes,
            };
            let assigned: Vec<usize> = trace
                .iter()
                .map(|request| {
                    let shard = placement.assign(request, &view);
                    assert!(
                        shard < shard_count,
                        "placement routed request {} to shard {shard} of {shard_count}",
                        request.id
                    );
                    shard
                })
                .collect();
            for (request, &shard) in trace.iter().zip(&assigned) {
                shards[shard].future_per_net[request.network] += 1;
            }
            Some(assigned)
        }
    };

    // Online mode exposes "can any more arrivals of this network reach
    // a shard" as the global count of future arrivals.
    let mut global_future = vec![0usize; net_count];
    for request in trace {
        global_future[request.network] += 1;
    }

    let mut heap: BinaryHeap<Event> = BinaryHeap::new();
    let mut seq = 0u64;
    let mut cursor = 0usize;
    let mut rejected: Vec<Request> = Vec::new();
    // Scratch buffers for the live view (rebuilt per online arrival).
    let mut live_queued = vec![0usize; shard_count];
    let mut live_in_flight = vec![0usize; shard_count];
    let mut live_resident = vec![0u64; shard_count];

    loop {
        // Merge the (already sorted) arrival trace with the event
        // heap; arrivals win ties (CLASS_ARRIVAL is the lowest class).
        let take_arrival = match (trace.get(cursor), heap.peek()) {
            (Some(request), Some(event)) => {
                request.arrival_ms.total_cmp(&event.time) != Ordering::Greater
            }
            (Some(_), None) => true,
            (None, Some(_)) => false,
            (None, None) => break,
        };

        if take_arrival {
            let request = trace[cursor];
            let now_ms = request.arrival_ms;
            global_future[request.network] -= 1;
            let target = match &preassigned {
                Some(assigned) => {
                    let shard = assigned[cursor];
                    shards[shard].future_per_net[request.network] -= 1;
                    Some(shard)
                }
                None => {
                    for (shard, state) in shards.iter().enumerate() {
                        live_queued[shard] = state.depth;
                        live_in_flight[shard] = state.in_flight;
                        live_resident[shard] = state.cache.resident_bytes;
                    }
                    let view = ClusterView {
                        platforms: cluster.platforms(),
                        unit_service_ms: cluster.unit_service_ms(),
                        queued: &live_queued,
                        in_flight: &live_in_flight,
                        resident_plan_bytes: &live_resident,
                    };
                    let chosen = placement.assign(&request, &view);
                    assert!(
                        chosen < shard_count,
                        "placement routed request {} to shard {chosen} of {shard_count}",
                        request.id
                    );
                    // Admission control: the chosen shard must be able
                    // to ever hold the request's plan; otherwise
                    // re-place onto the first shard that can, else
                    // reject.
                    let fits = |shard: usize| {
                        config
                            .cache_budget
                            .admits(shard, cluster.unit_plan_bytes()[shard][request.network])
                    };
                    if fits(chosen) {
                        Some(chosen)
                    } else {
                        (0..shard_count).find(|&shard| fits(shard))
                    }
                }
            };
            cursor += 1;
            match target {
                Some(shard) => {
                    let state = &mut shards[shard];
                    state.note_depth(now_ms, state.depth + 1);
                    state.queues[request.network].push_back(request);
                    if state.busy_until.is_none() {
                        attempt_dispatch(
                            state,
                            shard,
                            now_ms,
                            cluster,
                            policy,
                            config,
                            preassigned.is_none().then_some(&global_future[..]),
                            &mut heap,
                            &mut seq,
                        )?;
                    }
                }
                None => rejected.push(request),
            }
            // Online tail flush: the last arrival of a network is an
            // event for *every* shard still holding that network —
            // `more_arrivals` just flipped false cluster-wide, and
            // without this re-evaluation a size-triggered policy would
            // strand its stragglers.
            if preassigned.is_none() && global_future[request.network] == 0 {
                for (shard, state) in shards.iter_mut().enumerate() {
                    if target == Some(shard) {
                        continue; // already evaluated above
                    }
                    if state.busy_until.is_none() && !state.queues[request.network].is_empty() {
                        attempt_dispatch(
                            state,
                            shard,
                            now_ms,
                            cluster,
                            policy,
                            config,
                            Some(&global_future[..]),
                            &mut heap,
                            &mut seq,
                        )?;
                    }
                }
            }
        } else {
            // sma-lint: allow(no-panic) — this branch runs only after a
            // successful heap.peek(); pop cannot return None.
            let event = heap.pop().expect("peeked event present");
            let shard = event.shard;
            let state = &mut shards[shard];
            match event.class {
                CLASS_COMPLETE => {
                    debug_assert_eq!(
                        state.busy_until.map(f64::to_bits),
                        Some(event.time.to_bits())
                    );
                    state.busy_until = None;
                    state.in_flight = 0;
                    attempt_dispatch(
                        state,
                        shard,
                        event.time,
                        cluster,
                        policy,
                        config,
                        preassigned.is_none().then_some(&global_future[..]),
                        &mut heap,
                        &mut seq,
                    )?;
                }
                CLASS_TIMER => {
                    if event.time.to_bits() == state.pending_timer.to_bits() {
                        state.pending_timer = f64::INFINITY;
                    }
                    if state.busy_until.is_none() {
                        attempt_dispatch(
                            state,
                            shard,
                            event.time,
                            cluster,
                            policy,
                            config,
                            preassigned.is_none().then_some(&global_future[..]),
                            &mut heap,
                            &mut seq,
                        )?;
                    }
                }
                class => unreachable!("unknown event class {class}"),
            }
        }
    }

    // The cluster-wide horizon closes every shard's depth integral.
    let makespan_ms = shards
        .iter()
        .map(|state| state.report.makespan_ms)
        .fold(0.0_f64, f64::max);
    let reports = shards
        .into_iter()
        .enumerate()
        .map(|(shard, mut state)| {
            assert!(
                state.queues.iter().all(VecDeque::is_empty),
                "shard {shard} stalled with queued requests (policy never became ready)"
            );
            state.note_depth(state.depth_last_ms.max(makespan_ms), 0);
            state.report.queue_depth_mean = if makespan_ms > 0.0 {
                state.depth_integral_ms / makespan_ms
            } else {
                0.0
            };
            state.report.queue_depth_max = state.depth_max;
            state.report.cache = state.cache.into_stats();
            state.report
        })
        .collect();
    Ok(ServeRun { reports, rejected })
}

/// Evaluates every non-empty queue of an **idle** shard at `now_ms`
/// and either launches the most urgent ready batch or schedules the
/// earliest batch-close timer. The decision rule matches the
/// pre-engine drain exactly: ready queues race on
/// [`BatchPolicy::urgency`] (default: head arrival — FIFO across
/// networks), strict-less comparison, ties to the lowest network
/// index.
#[allow(clippy::too_many_arguments)]
fn attempt_dispatch(
    state: &mut ShardState,
    shard: usize,
    now_ms: f64,
    cluster: &ServeCluster,
    policy: &dyn BatchPolicy,
    config: &EngineConfig,
    global_future: Option<&[usize]>,
    heap: &mut BinaryHeap<Event>,
    seq: &mut u64,
) -> Result<(), RuntimeError> {
    debug_assert!(state.busy_until.is_none(), "dispatch on a busy shard");
    let mut best: Option<(usize, usize, f64)> = None; // (net, take, urgency)
    let mut wake_ms = f64::INFINITY;
    for net in 0..state.queues.len() {
        if state.queues[net].is_empty() {
            continue;
        }
        let more_arrivals = match global_future {
            Some(global) => global[net] > 0,
            None => state.future_per_net[net] > 0,
        };
        // O(1) when the ring has not wrapped since the last front
        // drain; policies see a plain FIFO slice.
        let contiguous: &[Request] = state.queues[net].make_contiguous();
        match policy.decide(contiguous, now_ms, more_arrivals) {
            PolicyDecision::Dispatch { take } => {
                let take = take.clamp(1, contiguous.len());
                let urgency = policy.urgency(contiguous, now_ms);
                if best.is_none_or(|(_, _, top)| urgency < top) {
                    best = Some((net, take, urgency));
                }
            }
            PolicyDecision::WaitUntil(at) => wake_ms = wake_ms.min(at),
            PolicyDecision::WaitForArrivals => {}
        }
    }

    if let Some((net, take, _)) = best {
        let service_ms = match state.service_ms.entry((net, take)) {
            std::collections::btree_map::Entry::Occupied(hit) => *hit.get(),
            std::collections::btree_map::Entry::Vacant(slot) => {
                let plan = cluster
                    .shard_executor(shard)
                    .with_batch(take)
                    .try_plan(&cluster.networks()[net])?;
                state.report.plans_compiled.push((net, take));
                *slot.insert(plan.run().total_ms)
            }
        };
        // Simulated plan residency: a miss bills the compile before
        // the batch starts (0 under the legacy shim's free compiles).
        let compile_charge =
            config.compile_ms_per_layer * cluster.unit_plan(shard, net).layer_count() as f64;
        let compile_ms = state.cache.access(
            (net, take),
            cluster.unit_plan_bytes()[shard][net],
            compile_charge,
        );
        let completion_ms = now_ms + compile_ms + service_ms;
        state.report.batches.push(BatchRecord {
            network: net,
            size: take,
            start_ms: now_ms,
            service_ms,
            compile_ms,
        });
        for request in state.queues[net].drain(..take) {
            state.report.requests.push(ServedRequest {
                id: request.id,
                network: request.network,
                arrival_ms: request.arrival_ms,
                deadline_ms: request.deadline_ms,
                start_ms: now_ms,
                completion_ms,
                batch_size: take,
            });
        }
        state.note_depth(now_ms, state.depth - take);
        state.report.busy_ms += compile_ms + service_ms;
        state.report.makespan_ms = completion_ms;
        state.busy_until = Some(completion_ms);
        state.in_flight = take;
        heap.push(Event {
            time: completion_ms,
            class: CLASS_COMPLETE,
            seq: *seq,
            shard,
        });
        *seq += 1;
    } else if wake_ms.is_finite() {
        // A batch-close event: without it, a queue whose deadline
        // expires between arrivals would stay open until the next
        // arrival happened by (the off-by-one-event bug).
        assert!(
            wake_ms > now_ms,
            "shard {shard} stalled at {now_ms} ms (policy asked to wait for the past)"
        );
        if wake_ms < state.pending_timer {
            state.pending_timer = wake_ms;
            heap.push(Event {
                time: wake_ms,
                class: CLASS_TIMER,
                seq: *seq,
                shard,
            });
            *seq += 1;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    // Exact float equality in these tests asserts bit-reproducibility
    // of exactly-representable values; an epsilon would weaken them.
    #![allow(clippy::float_cmp)]

    use super::*;

    #[test]
    fn plan_cache_lru_evicts_the_coldest_plan() {
        let mut cache = PlanCache::new(Some(100));
        assert_eq!(cache.access((0, 1), 40, 2.0), 2.0, "cold miss bills");
        assert_eq!(cache.access((1, 1), 40, 2.0), 2.0);
        assert_eq!(cache.access((0, 1), 40, 2.0), 0.0, "hit is free");
        // Admitting a third 40B plan exceeds 100B: the LRU victim is
        // (1,1) — (0,1) was touched more recently.
        assert_eq!(cache.access((2, 1), 40, 2.0), 2.0);
        assert_eq!(cache.access((0, 1), 40, 2.0), 0.0, "(0,1) survived");
        assert_eq!(cache.access((1, 1), 40, 2.0), 2.0, "(1,1) was evicted");
        let stats = cache.into_stats();
        assert_eq!(stats.hits + stats.misses, stats.lookups);
        assert_eq!(stats.evictions, 2);
        assert!(stats.peak_bytes <= 100);
        assert_eq!(stats.resident_bytes, 80);
    }

    #[test]
    fn plan_cache_unbounded_never_evicts() {
        let mut cache = PlanCache::new(None);
        for net in 0..50 {
            assert_eq!(cache.access((net, 1), 1 << 20, 1.0), 1.0);
            assert_eq!(cache.access((net, 1), 1 << 20, 1.0), 0.0);
        }
        let stats = cache.into_stats();
        assert_eq!(stats.evictions, 0);
        assert_eq!(stats.misses, 50);
        assert_eq!(stats.hits, 50);
        assert_eq!(stats.resident_bytes, 50 << 20);
    }

    #[test]
    fn oversized_plan_empties_the_cache_but_still_runs() {
        let mut cache = PlanCache::new(Some(64));
        cache.access((0, 1), 30, 1.0);
        cache.access((1, 1), 30, 1.0);
        // 100 > 64: everything is evicted, the plan is admitted anyway
        // (admission control keeps this out of online runs).
        assert_eq!(cache.access((2, 1), 100, 1.0), 1.0);
        let stats = cache.into_stats();
        assert_eq!(stats.evictions, 2);
        assert_eq!(stats.resident_bytes, 100);
    }

    #[test]
    fn cache_budget_admission() {
        assert!(CacheBudget::Unbounded.admits(3, u64::MAX));
        assert!(CacheBudget::Uniform(10).admits(0, 10));
        assert!(!CacheBudget::Uniform(10).admits(0, 11));
        let per = CacheBudget::PerShard(vec![5, 50]);
        assert!(!per.admits(0, 20));
        assert!(per.admits(1, 20));
        assert_eq!(CacheBudget::Uniform(32 * 1024).label(), "32KiB");
    }

    #[test]
    fn events_order_by_time_class_then_seq() {
        let mut heap = BinaryHeap::new();
        let ev = |time, class, seq| Event {
            time,
            class,
            seq,
            shard: 0,
        };
        heap.push(ev(5.0, CLASS_TIMER, 0));
        heap.push(ev(5.0, CLASS_COMPLETE, 1));
        heap.push(ev(4.0, CLASS_TIMER, 2));
        heap.push(ev(5.0, CLASS_COMPLETE, 3));
        let order: Vec<(f64, u8, u64)> = std::iter::from_fn(|| heap.pop())
            .map(|e| (e.time, e.class, e.seq))
            .collect();
        assert_eq!(
            order,
            vec![
                (4.0, CLASS_TIMER, 2),
                (5.0, CLASS_COMPLETE, 1),
                (5.0, CLASS_COMPLETE, 3),
                (5.0, CLASS_TIMER, 0),
            ]
        );
    }
}
