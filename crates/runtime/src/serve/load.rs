//! Open-loop request generation on a simulated clock.
//!
//! Serving experiments must be reproducible byte-for-byte, so the
//! generator never reads the wall clock: arrivals are drawn from a
//! seeded [`SeededRng`] stream and expressed in *simulated*
//! milliseconds. The same seed always yields the same trace, on any
//! thread count, on any machine.

/// Deterministic splitmix64 generator.
///
/// A Weyl counter plus a finaliser mix, so every one of the 2^64 seeds
/// (including 0) yields a distinct stream — no zero-state remapping
/// that would silently alias two seeds.
#[derive(Debug, Clone)]
pub struct SeededRng(u64);

impl SeededRng {
    /// Seeds the generator.
    #[must_use]
    pub const fn new(seed: u64) -> Self {
        SeededRng(seed)
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, 1)` using the top 53 bits.
    pub fn next_unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Draw in `0..n` by reducing a 64-bit draw modulo `n`.
    ///
    /// Not *exactly* uniform: the `% n` reduction over-weights the
    /// first `2^64 mod n` residues by `2^-64` each, a relative bias
    /// below `n / 2^64`. Everything this indexes is a table of at most
    /// a few dozen entries (network lists, platform lists), so the
    /// bias is under `2^-58` — unobservable in any trace this
    /// workspace draws, and not worth a rejection loop that would
    /// consume a data-dependent number of draws and perturb every
    /// downstream stream.
    ///
    /// # Panics
    ///
    /// Panics when `n == 0`, in every build profile. An empty range
    /// has no valid draw; the previous `debug_assert!` plus `n.max(1)`
    /// fallback silently returned 0 in release builds, hiding caller
    /// bugs exactly where the reproducibility contract needs them
    /// loud. Trace generation is outside the runtime's no-panic
    /// boundary (see `docs/DETERMINISM.md`), so a precondition panic
    /// is the documented contract here.
    pub fn next_index(&mut self, n: usize) -> usize {
        assert!(n > 0, "SeededRng::next_index: empty range (n = 0)");
        (self.next_u64() % n as u64) as usize
    }
}

/// One inference request in a serving trace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Request {
    /// Stable identity (position in the trace).
    pub id: u64,
    /// Index into the simulation's network table.
    pub network: usize,
    /// Simulated arrival time in milliseconds.
    pub arrival_ms: f64,
    /// Absolute SLO deadline in simulated milliseconds
    /// (`f64::INFINITY` when the trace carries no SLO). Completion
    /// after this instant counts as a deadline miss in
    /// [`ServeOutcome`](super::ServeOutcome); the EDF policy orders
    /// queues by it.
    pub deadline_ms: f64,
    /// SLO class, 0 = highest priority. The shed policy drops the
    /// highest class numbers first under backlog pressure, and retry
    /// timeouts scale per class. Traces without classes are all
    /// class 0.
    pub class: u8,
}

impl Request {
    /// Whether a completion instant meets this request's SLO.
    #[must_use]
    pub fn meets_deadline(&self, completion_ms: f64) -> bool {
        completion_ms <= self.deadline_ms
    }
}

/// Deterministic rate modulation layered over the open-loop generator.
///
/// A shape rescales the *mean gap* as a pure function of the simulated
/// clock — no extra RNG draws, no libm trig (piecewise-linear waves
/// only), so shaped traces are bit-stable across platforms and the
/// id/network/class streams are bit-identical to the steady trace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LoadShape {
    /// Constant mean rate: the original generator, bit for bit.
    Steady,
    /// Square-wave bursts: during the first `duty` fraction of each
    /// period the mean gap shrinks by `1 / (1 + amplitude)` (a burst);
    /// for the rest it stretches by `1 + amplitude` (a lull).
    Bursty {
        /// Wave period in simulated milliseconds (must be positive).
        period_ms: f64,
        /// Burst fraction of each period, in `(0, 1)`.
        duty: f64,
        /// Burst intensity, `>= 0`.
        amplitude: f64,
    },
    /// Triangle-wave day cycle: the mean gap sweeps linearly from
    /// `1 - amplitude` (peak load, at the period edges) up to
    /// `1 + amplitude` (trough, mid-period) and back. A bit-stable
    /// stand-in for a sinusoidal diurnal curve.
    Diurnal {
        /// Cycle period in simulated milliseconds (must be positive).
        period_ms: f64,
        /// Swing around the configured mean, in `[0, 1)`.
        amplitude: f64,
    },
}

impl LoadShape {
    /// Multiplier applied to the mean interarrival gap at simulated
    /// time `t_ms`. Always finite and positive for valid shapes.
    #[must_use]
    pub fn gap_factor(&self, t_ms: f64) -> f64 {
        match *self {
            LoadShape::Steady => 1.0,
            LoadShape::Bursty {
                period_ms,
                duty,
                amplitude,
            } => {
                let phase = (t_ms / period_ms).fract();
                if phase < duty {
                    1.0 / (1.0 + amplitude)
                } else {
                    1.0 + amplitude
                }
            }
            LoadShape::Diurnal {
                period_ms,
                amplitude,
            } => {
                let phase = (t_ms / period_ms).fract();
                // Triangle wave: 0 at the period edges, 1 mid-period.
                let tri = 1.0 - (2.0 * phase - 1.0).abs();
                1.0 + amplitude * (2.0 * tri - 1.0)
            }
        }
    }

    /// Whether the shape's parameters keep every gap finite, positive
    /// and order-preserving.
    #[must_use]
    pub fn is_valid(&self) -> bool {
        match *self {
            LoadShape::Steady => true,
            LoadShape::Bursty {
                period_ms,
                duty,
                amplitude,
            } => {
                period_ms > 0.0
                    && period_ms.is_finite()
                    && duty > 0.0
                    && duty < 1.0
                    && amplitude >= 0.0
                    && amplitude.is_finite()
            }
            LoadShape::Diurnal {
                period_ms,
                amplitude,
            } => period_ms > 0.0 && period_ms.is_finite() && (0.0..1.0).contains(&amplitude),
        }
    }
}

/// Seeded open-loop trace generator.
///
/// Interarrival gaps are uniform in `[0, 2·mean)` (mean rate
/// `1/mean_interarrival_ms`, no `ln` so traces are bit-stable across
/// libm implementations); the target network of each request is drawn
/// uniformly. Open-loop means arrivals never react to completions —
/// the pressure a production front door actually applies. A
/// [`LoadShape`] may modulate the mean over simulated time.
#[derive(Debug, Clone)]
pub struct LoadGenerator {
    rng: SeededRng,
    mean_interarrival_ms: f64,
    slo_ms: f64,
    classes: u8,
    shape: LoadShape,
}

impl LoadGenerator {
    /// A generator with the given seed and mean interarrival gap. The
    /// trace carries no SLO (every deadline is `f64::INFINITY`); see
    /// [`LoadGenerator::with_slo`].
    #[must_use]
    pub fn new(seed: u64, mean_interarrival_ms: f64) -> Self {
        LoadGenerator {
            rng: SeededRng::new(seed),
            mean_interarrival_ms: mean_interarrival_ms.max(0.0),
            slo_ms: f64::INFINITY,
            classes: 1,
            shape: LoadShape::Steady,
        }
    }

    /// Attaches a per-request latency SLO: every drawn request gets
    /// `deadline_ms = arrival_ms + slo_ms`. The deadline is a pure
    /// function of the arrival (no extra random draws), so traces with
    /// and without an SLO have bit-identical arrivals and networks.
    #[must_use]
    pub fn with_slo(mut self, slo_ms: f64) -> Self {
        self.slo_ms = if slo_ms > 0.0 { slo_ms } else { f64::INFINITY };
        self
    }

    /// Stripes the trace over `classes` SLO classes: request `id` gets
    /// `class = id % classes` — a pure function of the id, **zero**
    /// extra RNG draws, so arrivals, networks and deadlines are
    /// bit-identical with and without classes. `classes` is clamped
    /// to 1+.
    #[must_use]
    pub fn with_classes(mut self, classes: u8) -> Self {
        self.classes = classes.max(1);
        self
    }

    /// Modulates the mean rate with a [`LoadShape`]. The shape draws
    /// nothing from the RNG, so the id/network/class streams stay
    /// bit-identical to the steady trace; only arrival instants (and
    /// the deadlines offset from them) move. [`LoadShape::Steady`]
    /// leaves the arithmetic untouched, bit for bit.
    ///
    /// # Panics
    ///
    /// Panics when the shape's parameters are invalid
    /// ([`LoadShape::is_valid`]), since they would produce
    /// non-monotone or non-finite arrivals.
    #[must_use]
    pub fn with_shape(mut self, shape: LoadShape) -> Self {
        assert!(shape.is_valid(), "invalid load shape: {shape:?}");
        self.shape = shape;
        self
    }

    /// Draws `count` requests over `networks` models, in arrival order.
    pub fn trace(&mut self, count: usize, networks: usize) -> Vec<Request> {
        assert!(networks > 0, "a trace needs at least one network");
        let mut t = 0.0_f64;
        (0..count as u64)
            .map(|id| {
                let gap = 2.0 * self.mean_interarrival_ms * self.rng.next_unit();
                // Steady skips the multiply so legacy traces stay
                // bit-identical by construction, not by IEEE identity.
                t += match self.shape {
                    LoadShape::Steady => gap,
                    shape => gap * shape.gap_factor(t),
                };
                Request {
                    id,
                    network: self.rng.next_index(networks),
                    arrival_ms: t,
                    deadline_ms: t + self.slo_ms,
                    // Pure function of the id: no RNG draw, so classed
                    // and class-free traces are otherwise bit-identical.
                    class: (id % u64::from(self.classes)) as u8,
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    // Exact float equality in these tests asserts bit-reproducibility
    // of exactly-representable values; an epsilon would weaken them.
    #![allow(clippy::float_cmp)]

    use super::*;

    #[test]
    fn same_seed_same_trace() {
        let a = LoadGenerator::new(42, 3.0).trace(500, 4);
        let b = LoadGenerator::new(42, 3.0).trace(500, 4);
        assert_eq!(a, b);
        let c = LoadGenerator::new(43, 3.0).trace(500, 4);
        assert_ne!(a, c);
    }

    #[test]
    fn arrivals_are_ordered_and_cover_networks() {
        let trace = LoadGenerator::new(7, 1.0).trace(2000, 3);
        assert!(trace.windows(2).all(|w| w[0].arrival_ms <= w[1].arrival_ms));
        assert!(trace.iter().all(|r| r.network < 3));
        for net in 0..3 {
            assert!(trace.iter().any(|r| r.network == net));
        }
        // Mean gap lands near the configured mean.
        let span = trace.last().unwrap().arrival_ms;
        let mean = span / trace.len() as f64;
        assert!((0.8..1.2).contains(&mean), "mean gap {mean}");
    }

    #[test]
    fn slo_offsets_deadlines_without_perturbing_the_trace() {
        let plain = LoadGenerator::new(21, 2.0).trace(300, 3);
        let slo = LoadGenerator::new(21, 2.0).with_slo(12.5).trace(300, 3);
        for (a, b) in plain.iter().zip(&slo) {
            assert_eq!(a.arrival_ms.to_bits(), b.arrival_ms.to_bits());
            assert_eq!(a.network, b.network);
            assert_eq!(a.deadline_ms, f64::INFINITY);
            assert_eq!(b.deadline_ms.to_bits(), (b.arrival_ms + 12.5).to_bits());
            assert!(!b.meets_deadline(b.deadline_ms + 1.0));
            assert!(b.meets_deadline(b.deadline_ms));
        }
        // A non-positive SLO means "no SLO", not "always missed".
        let none = LoadGenerator::new(21, 2.0).with_slo(0.0).trace(10, 3);
        assert!(none.iter().all(|r| r.deadline_ms == f64::INFINITY));
    }

    #[test]
    fn classes_stripe_without_perturbing_the_trace() {
        let plain = LoadGenerator::new(5, 2.0).trace(100, 3);
        let classed = LoadGenerator::new(5, 2.0).with_classes(3).trace(100, 3);
        for (a, b) in plain.iter().zip(&classed) {
            assert_eq!(a.arrival_ms.to_bits(), b.arrival_ms.to_bits());
            assert_eq!(a.network, b.network);
            assert_eq!(a.deadline_ms.to_bits(), b.deadline_ms.to_bits());
            assert_eq!(a.class, 0, "class-free traces are all class 0");
            assert_eq!(b.class, (b.id % 3) as u8);
        }
        for class in 0..3u8 {
            assert!(classed.iter().any(|r| r.class == class));
        }
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn next_index_panics_on_empty_range_in_every_profile() {
        // The old code only guarded this with a debug_assert! and
        // silently returned 0 in release builds.
        let _ = SeededRng::new(1).next_index(0);
    }

    #[test]
    fn steady_shape_is_the_identity() {
        let plain = LoadGenerator::new(11, 2.0).trace(400, 3);
        let shaped = LoadGenerator::new(11, 2.0)
            .with_shape(LoadShape::Steady)
            .trace(400, 3);
        for (a, b) in plain.iter().zip(&shaped) {
            assert_eq!(a.arrival_ms.to_bits(), b.arrival_ms.to_bits());
        }
    }

    #[test]
    fn shapes_perturb_only_arrival_instants() {
        let shapes = [
            LoadShape::Bursty {
                period_ms: 40.0,
                duty: 0.25,
                amplitude: 3.0,
            },
            LoadShape::Diurnal {
                period_ms: 200.0,
                amplitude: 0.6,
            },
        ];
        let plain = LoadGenerator::new(9, 2.0).with_classes(3).trace(500, 4);
        for shape in shapes {
            let shaped = LoadGenerator::new(9, 2.0)
                .with_classes(3)
                .with_shape(shape)
                .trace(500, 4);
            // Same draws in the same order: ids, networks and classes
            // are bit-identical; arrivals stay sorted and finite.
            assert!(shaped
                .windows(2)
                .all(|w| w[0].arrival_ms <= w[1].arrival_ms));
            let mut moved = false;
            for (a, b) in plain.iter().zip(&shaped) {
                assert_eq!(a.id, b.id);
                assert_eq!(a.network, b.network);
                assert_eq!(a.class, b.class);
                assert!(b.arrival_ms.is_finite());
                moved |= a.arrival_ms.to_bits() != b.arrival_ms.to_bits();
            }
            assert!(moved, "{shape:?} left every arrival untouched");
            // And the whole thing is reproducible from the seed.
            let again = LoadGenerator::new(9, 2.0)
                .with_classes(3)
                .with_shape(shape)
                .trace(500, 4);
            assert_eq!(shaped, again);
        }
    }

    #[test]
    fn shape_validity_bounds() {
        assert!(LoadShape::Steady.is_valid());
        assert!(LoadShape::Bursty {
            period_ms: 10.0,
            duty: 0.5,
            amplitude: 2.0
        }
        .is_valid());
        assert!(!LoadShape::Bursty {
            period_ms: 0.0,
            duty: 0.5,
            amplitude: 2.0
        }
        .is_valid());
        assert!(!LoadShape::Bursty {
            period_ms: 10.0,
            duty: 1.0,
            amplitude: 2.0
        }
        .is_valid());
        assert!(!LoadShape::Diurnal {
            period_ms: 10.0,
            amplitude: 1.0
        }
        .is_valid());
        // Factors stay positive and finite across a full period.
        let shape = LoadShape::Diurnal {
            period_ms: 50.0,
            amplitude: 0.9,
        };
        let mut t = 0.0;
        while t < 120.0 {
            let f = shape.gap_factor(t);
            assert!(f.is_finite() && f > 0.0, "factor {f} at t={t}");
            t += 0.7;
        }
    }

    #[test]
    fn unit_draws_stay_in_range() {
        let mut rng = SeededRng::new(0);
        for _ in 0..10_000 {
            let u = rng.next_unit();
            assert!((0.0..1.0).contains(&u));
        }
    }
}
