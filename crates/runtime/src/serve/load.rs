//! Open-loop request generation on a simulated clock.
//!
//! Serving experiments must be reproducible byte-for-byte, so the
//! generator never reads the wall clock: arrivals are drawn from a
//! seeded [`SeededRng`] stream and expressed in *simulated*
//! milliseconds. The same seed always yields the same trace, on any
//! thread count, on any machine.

/// Deterministic splitmix64 generator.
///
/// A Weyl counter plus a finaliser mix, so every one of the 2^64 seeds
/// (including 0) yields a distinct stream — no zero-state remapping
/// that would silently alias two seeds.
#[derive(Debug, Clone)]
pub struct SeededRng(u64);

impl SeededRng {
    /// Seeds the generator.
    #[must_use]
    pub const fn new(seed: u64) -> Self {
        SeededRng(seed)
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, 1)` using the top 53 bits.
    pub fn next_unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform draw in `0..n` (`n` must be non-zero).
    pub fn next_index(&mut self, n: usize) -> usize {
        debug_assert!(n > 0, "empty index range");
        (self.next_u64() % n.max(1) as u64) as usize
    }
}

/// One inference request in a serving trace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Request {
    /// Stable identity (position in the trace).
    pub id: u64,
    /// Index into the simulation's network table.
    pub network: usize,
    /// Simulated arrival time in milliseconds.
    pub arrival_ms: f64,
    /// Absolute SLO deadline in simulated milliseconds
    /// (`f64::INFINITY` when the trace carries no SLO). Completion
    /// after this instant counts as a deadline miss in
    /// [`ServeOutcome`](super::ServeOutcome); the EDF policy orders
    /// queues by it.
    pub deadline_ms: f64,
    /// SLO class, 0 = highest priority. The shed policy drops the
    /// highest class numbers first under backlog pressure, and retry
    /// timeouts scale per class. Traces without classes are all
    /// class 0.
    pub class: u8,
}

impl Request {
    /// Whether a completion instant meets this request's SLO.
    #[must_use]
    pub fn meets_deadline(&self, completion_ms: f64) -> bool {
        completion_ms <= self.deadline_ms
    }
}

/// Seeded open-loop trace generator.
///
/// Interarrival gaps are uniform in `[0, 2·mean)` (mean rate
/// `1/mean_interarrival_ms`, no `ln` so traces are bit-stable across
/// libm implementations); the target network of each request is drawn
/// uniformly. Open-loop means arrivals never react to completions —
/// the pressure a production front door actually applies.
#[derive(Debug, Clone)]
pub struct LoadGenerator {
    rng: SeededRng,
    mean_interarrival_ms: f64,
    slo_ms: f64,
    classes: u8,
}

impl LoadGenerator {
    /// A generator with the given seed and mean interarrival gap. The
    /// trace carries no SLO (every deadline is `f64::INFINITY`); see
    /// [`LoadGenerator::with_slo`].
    #[must_use]
    pub fn new(seed: u64, mean_interarrival_ms: f64) -> Self {
        LoadGenerator {
            rng: SeededRng::new(seed),
            mean_interarrival_ms: mean_interarrival_ms.max(0.0),
            slo_ms: f64::INFINITY,
            classes: 1,
        }
    }

    /// Attaches a per-request latency SLO: every drawn request gets
    /// `deadline_ms = arrival_ms + slo_ms`. The deadline is a pure
    /// function of the arrival (no extra random draws), so traces with
    /// and without an SLO have bit-identical arrivals and networks.
    #[must_use]
    pub fn with_slo(mut self, slo_ms: f64) -> Self {
        self.slo_ms = if slo_ms > 0.0 { slo_ms } else { f64::INFINITY };
        self
    }

    /// Stripes the trace over `classes` SLO classes: request `id` gets
    /// `class = id % classes` — a pure function of the id, **zero**
    /// extra RNG draws, so arrivals, networks and deadlines are
    /// bit-identical with and without classes. `classes` is clamped
    /// to 1+.
    #[must_use]
    pub fn with_classes(mut self, classes: u8) -> Self {
        self.classes = classes.max(1);
        self
    }

    /// Draws `count` requests over `networks` models, in arrival order.
    pub fn trace(&mut self, count: usize, networks: usize) -> Vec<Request> {
        assert!(networks > 0, "a trace needs at least one network");
        let mut t = 0.0_f64;
        (0..count as u64)
            .map(|id| {
                t += 2.0 * self.mean_interarrival_ms * self.rng.next_unit();
                Request {
                    id,
                    network: self.rng.next_index(networks),
                    arrival_ms: t,
                    deadline_ms: t + self.slo_ms,
                    // Pure function of the id: no RNG draw, so classed
                    // and class-free traces are otherwise bit-identical.
                    class: (id % u64::from(self.classes)) as u8,
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    // Exact float equality in these tests asserts bit-reproducibility
    // of exactly-representable values; an epsilon would weaken them.
    #![allow(clippy::float_cmp)]

    use super::*;

    #[test]
    fn same_seed_same_trace() {
        let a = LoadGenerator::new(42, 3.0).trace(500, 4);
        let b = LoadGenerator::new(42, 3.0).trace(500, 4);
        assert_eq!(a, b);
        let c = LoadGenerator::new(43, 3.0).trace(500, 4);
        assert_ne!(a, c);
    }

    #[test]
    fn arrivals_are_ordered_and_cover_networks() {
        let trace = LoadGenerator::new(7, 1.0).trace(2000, 3);
        assert!(trace.windows(2).all(|w| w[0].arrival_ms <= w[1].arrival_ms));
        assert!(trace.iter().all(|r| r.network < 3));
        for net in 0..3 {
            assert!(trace.iter().any(|r| r.network == net));
        }
        // Mean gap lands near the configured mean.
        let span = trace.last().unwrap().arrival_ms;
        let mean = span / trace.len() as f64;
        assert!((0.8..1.2).contains(&mean), "mean gap {mean}");
    }

    #[test]
    fn slo_offsets_deadlines_without_perturbing_the_trace() {
        let plain = LoadGenerator::new(21, 2.0).trace(300, 3);
        let slo = LoadGenerator::new(21, 2.0).with_slo(12.5).trace(300, 3);
        for (a, b) in plain.iter().zip(&slo) {
            assert_eq!(a.arrival_ms.to_bits(), b.arrival_ms.to_bits());
            assert_eq!(a.network, b.network);
            assert_eq!(a.deadline_ms, f64::INFINITY);
            assert_eq!(b.deadline_ms.to_bits(), (b.arrival_ms + 12.5).to_bits());
            assert!(!b.meets_deadline(b.deadline_ms + 1.0));
            assert!(b.meets_deadline(b.deadline_ms));
        }
        // A non-positive SLO means "no SLO", not "always missed".
        let none = LoadGenerator::new(21, 2.0).with_slo(0.0).trace(10, 3);
        assert!(none.iter().all(|r| r.deadline_ms == f64::INFINITY));
    }

    #[test]
    fn classes_stripe_without_perturbing_the_trace() {
        let plain = LoadGenerator::new(5, 2.0).trace(100, 3);
        let classed = LoadGenerator::new(5, 2.0).with_classes(3).trace(100, 3);
        for (a, b) in plain.iter().zip(&classed) {
            assert_eq!(a.arrival_ms.to_bits(), b.arrival_ms.to_bits());
            assert_eq!(a.network, b.network);
            assert_eq!(a.deadline_ms.to_bits(), b.deadline_ms.to_bits());
            assert_eq!(a.class, 0, "class-free traces are all class 0");
            assert_eq!(b.class, (b.id % 3) as u8);
        }
        for class in 0..3u8 {
            assert!(classed.iter().any(|r| r.class == class));
        }
    }

    #[test]
    fn unit_draws_stay_in_range() {
        let mut rng = SeededRng::new(0);
        for _ in 0..10_000 {
            let u = rng.next_unit();
            assert!((0.0..1.0).contains(&u));
        }
    }
}
