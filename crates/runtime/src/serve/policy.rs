//! Pluggable batching policies.
//!
//! A shard forms batches from its per-network FIFO queues; the policy
//! decides *when* a queue is ready to dispatch and *how many* requests
//! the batch takes. Three built-ins cover the classic serving
//! trade-off: [`Immediate`] (lowest wait, worst amortisation),
//! [`SizeK`] (best amortisation, unbounded wait at low load), and
//! [`Deadline`] (dynamic batching with a wait bound — the policy real
//! serving stacks ship).

use super::load::Request;

/// A policy's answer for one non-empty queue at one simulated instant.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PolicyDecision {
    /// Dispatch the first `take` queued requests as one batch now.
    Dispatch {
        /// How many requests the batch takes (`1..=queue.len()`).
        take: usize,
    },
    /// Not ready; becomes ready at this simulated millisecond even if
    /// nothing else arrives (a deadline expiry).
    WaitUntil(f64),
    /// Not ready; only a future arrival can make this queue ready.
    WaitForArrivals,
}

/// When and how a shard's queued requests coalesce into batches.
///
/// Implementations must be pure functions of their arguments — the
/// simulation replays decisions and expects byte-identical outcomes.
/// The event engine consults `decide` at every event that can change a
/// queue's readiness (an arrival, a batch-close timer it scheduled
/// from a [`PolicyDecision::WaitUntil`], a service completion); a
/// queue whose wait already exceeds its bound must therefore dispatch
/// *at that decision point*, never hold out for the next arrival.
pub trait BatchPolicy: std::fmt::Debug + Send + Sync {
    /// Short label used in reports (`immediate`, `size8`, …).
    fn label(&self) -> String;

    /// Decides for one non-empty same-network queue (FIFO order) at
    /// simulated time `now_ms`. `more_arrivals` is false once no future
    /// request for this queue's network can reach this shard — policies
    /// must eventually dispatch in that state or the drain would stall.
    fn decide(&self, queue: &[Request], now_ms: f64, more_arrivals: bool) -> PolicyDecision;

    /// Priority of a dispatch-ready queue when several queues on one
    /// shard are ready at the same event: the engine launches the queue
    /// with the **lowest** urgency, ties to the lowest network index.
    /// The default is the head request's arrival instant — FIFO across
    /// networks, exactly the pre-engine drain order. SLO-aware policies
    /// override this (EDF returns the head's deadline).
    fn urgency(&self, queue: &[Request], _now_ms: f64) -> f64 {
        queue[0].arrival_ms
    }
}

/// No batching: every request is dispatched alone, as soon as the
/// shard frees up. Minimises time-in-queue at the cost of paying the
/// full per-inference overhead per request.
#[derive(Debug, Clone, Copy, Default)]
pub struct Immediate;

impl BatchPolicy for Immediate {
    fn label(&self) -> String {
        "immediate".into()
    }

    fn decide(&self, _queue: &[Request], _now_ms: f64, _more_arrivals: bool) -> PolicyDecision {
        PolicyDecision::Dispatch { take: 1 }
    }
}

/// Fixed-size batching: wait until `k` same-network requests queue up,
/// then dispatch exactly `k`. The tail of the trace (fewer than `k`
/// stragglers with nothing more coming) is flushed undersized.
#[derive(Debug, Clone, Copy)]
pub struct SizeK {
    k: usize,
}

impl SizeK {
    /// A policy batching `k` requests at a time (`k` is clamped to 1+).
    #[must_use]
    pub fn new(k: usize) -> Self {
        SizeK { k: k.max(1) }
    }
}

impl BatchPolicy for SizeK {
    fn label(&self) -> String {
        format!("size{}", self.k)
    }

    fn decide(&self, queue: &[Request], _now_ms: f64, more_arrivals: bool) -> PolicyDecision {
        if queue.len() >= self.k {
            PolicyDecision::Dispatch { take: self.k }
        } else if more_arrivals {
            PolicyDecision::WaitForArrivals
        } else {
            PolicyDecision::Dispatch { take: queue.len() }
        }
    }
}

/// Deadline (timeout) dynamic batching: dispatch once `max_batch`
/// requests are queued **or** the oldest has waited `max_wait_ms`,
/// whichever comes first. Bounded added latency, opportunistic
/// amortisation — what production serving frontends do.
#[derive(Debug, Clone, Copy)]
pub struct Deadline {
    max_wait_ms: f64,
    max_batch: usize,
}

impl Deadline {
    /// A policy dispatching after `max_wait_ms` or at `max_batch`
    /// queued requests, whichever is hit first.
    #[must_use]
    pub fn new(max_wait_ms: f64, max_batch: usize) -> Self {
        Deadline {
            max_wait_ms: max_wait_ms.max(0.0),
            max_batch: max_batch.max(1),
        }
    }
}

impl BatchPolicy for Deadline {
    fn label(&self) -> String {
        format!("deadline{:.2}ms-max{}", self.max_wait_ms, self.max_batch)
    }

    fn decide(&self, queue: &[Request], now_ms: f64, more_arrivals: bool) -> PolicyDecision {
        if queue.len() >= self.max_batch {
            return PolicyDecision::Dispatch {
                take: self.max_batch,
            };
        }
        // A ripe queue — the oldest request's wait is at or past the
        // bound — closes at this very decision point (the triggering
        // event), never at the next arrival. When the queue is not
        // ripe, the returned instant is the exact expiry so the engine
        // can schedule the batch-close event there; an engine that only
        // re-consulted policies on arrivals would hold an expired batch
        // open until the next request happened to arrive (the
        // off-by-one-event bug the serve-engine regression suite pins).
        let expiry = queue[0].arrival_ms + self.max_wait_ms;
        if now_ms >= expiry || !more_arrivals {
            PolicyDecision::Dispatch { take: queue.len() }
        } else {
            PolicyDecision::WaitUntil(expiry)
        }
    }
}

#[cfg(test)]
mod tests {
    // Exact float equality in these tests asserts bit-reproducibility
    // of exactly-representable values; an epsilon would weaken them.
    #![allow(clippy::float_cmp)]

    use super::*;

    fn queue(arrivals: &[f64]) -> Vec<Request> {
        arrivals
            .iter()
            .enumerate()
            .map(|(i, &arrival_ms)| Request {
                id: i as u64,
                network: 0,
                arrival_ms,
                deadline_ms: f64::INFINITY,
                class: 0,
            })
            .collect()
    }

    #[test]
    fn immediate_always_takes_one() {
        let q = queue(&[0.0, 1.0, 2.0]);
        assert_eq!(
            Immediate.decide(&q, 5.0, true),
            PolicyDecision::Dispatch { take: 1 }
        );
    }

    #[test]
    fn size_k_waits_then_fills_then_flushes() {
        let policy = SizeK::new(3);
        let q2 = queue(&[0.0, 1.0]);
        assert_eq!(
            policy.decide(&q2, 1.0, true),
            PolicyDecision::WaitForArrivals
        );
        assert_eq!(
            policy.decide(&q2, 1.0, false),
            PolicyDecision::Dispatch { take: 2 },
            "end of trace must flush the stragglers"
        );
        let q4 = queue(&[0.0, 1.0, 2.0, 3.0]);
        assert_eq!(
            policy.decide(&q4, 3.0, true),
            PolicyDecision::Dispatch { take: 3 },
            "a full batch dispatches exactly k"
        );
    }

    #[test]
    fn deadline_trips_on_size_or_timeout() {
        let policy = Deadline::new(4.0, 2);
        let q1 = queue(&[10.0]);
        assert_eq!(
            policy.decide(&q1, 11.0, true),
            PolicyDecision::WaitUntil(14.0)
        );
        assert_eq!(
            policy.decide(&q1, 14.0, true),
            PolicyDecision::Dispatch { take: 1 },
            "oldest request hit its deadline"
        );
        let q2 = queue(&[10.0, 10.5]);
        assert_eq!(
            policy.decide(&q2, 10.5, true),
            PolicyDecision::Dispatch { take: 2 },
            "max_batch reached before the deadline"
        );
        assert_eq!(
            policy.decide(&q1, 11.0, false),
            PolicyDecision::Dispatch { take: 1 },
            "end of trace dispatches without waiting out the deadline"
        );
    }

    /// Regression (the latent off-by-one-event bug): a batch whose
    /// wait already exceeds the deadline must close at the decision
    /// point that observed it — a completion freeing a busy shard, a
    /// batch-close timer — and never survive until the next arrival.
    #[test]
    fn deadline_ripe_queue_closes_at_the_triggering_event() {
        let policy = Deadline::new(4.0, 16);
        let q = queue(&[10.0, 11.0]); // head expiry: 14.0
        for now in [14.0, 14.5, 100.0] {
            assert_eq!(
                policy.decide(&q, now, true),
                PolicyDecision::Dispatch { take: 2 },
                "wait exceeded at now={now}: the batch must close here"
            );
        }
        // Not ripe: the policy names the exact batch-close instant so
        // the engine can schedule the event (nothing vaguer — an
        // engine re-consulting only on arrivals would strand it).
        assert_eq!(
            policy.decide(&q, 13.9, true),
            PolicyDecision::WaitUntil(14.0)
        );
    }

    #[test]
    fn default_urgency_is_head_arrival_fifo() {
        let q = queue(&[3.0, 9.0]);
        assert_eq!(Immediate.urgency(&q, 50.0), 3.0);
        assert_eq!(SizeK::new(4).urgency(&q, 50.0), 3.0);
        assert_eq!(Deadline::new(1.0, 2).urgency(&q, 50.0), 3.0);
    }
}
