//! Simulated multi-shard serving over compiled [`NetworkPlan`]s.
//!
//! The compile-once layer ([`Executor::plan`](crate::Executor::plan) →
//! [`NetworkPlan::run`]) gives the runtime a lock-free replay
//! primitive; this module builds the distribution layer above it: N
//! shards, each an [`Executor`] holding pre-compiled plans for the
//! networks it hosts, fed from an open-loop request trace through a
//! pluggable [`BatchPolicy`] and [`Placement`] strategy.
//!
//! Everything runs on a **simulated clock**. Arrival times come from a
//! seeded [`LoadGenerator`], service times from `NetworkPlan::run()`'s
//! cost model, and queueing falls out of the event loop — the wall
//! clock is never consulted, so a serve run is a pure function of
//! (trace, cluster, policy, placement): byte-identical across repeat
//! runs and across any worker-thread count.
//!
//! The simulation splits into three phases:
//!
//! 1. **Admission** (sequential): the [`Placement`] walks the trace in
//!    arrival order and pins every request to a shard.
//! 2. **Drain** (parallel-ready): [`ServeSim::simulate_shard`] drains
//!    one shard's queues through its plans — a pure `&self` call, so
//!    shards fan across threads (the bench crate drives this through
//!    its sweep driver).
//! 3. **Aggregation** (sequential): [`ServeSim::outcome`] folds the
//!    shard reports into latency percentiles, utilization and the
//!    batch-size histogram.
//!
//! ```
//! use sma_models::zoo;
//! use sma_runtime::serve::{Deadline, LoadGenerator, RoundRobin, ServeSim};
//! use sma_runtime::{Executor, Platform};
//! use std::sync::Arc;
//!
//! let shards = vec![
//!     Executor::new(Platform::Sma3),
//!     Executor::new(Platform::GpuTensorCore),
//! ];
//! let networks = vec![zoo::alexnet(), zoo::vgg_a()];
//! let trace = LoadGenerator::new(7, 4.0).trace(200, networks.len());
//! let sim = ServeSim::try_new(
//!     shards,
//!     networks,
//!     Arc::new(Deadline::new(8.0, 16)),
//!     &mut RoundRobin::default(),
//!     &trace,
//! )
//! .unwrap();
//! let reports = sim.run_serial();
//! let outcome = sim.outcome(&reports);
//! assert_eq!(outcome.requests, 200);
//! assert!(outcome.p99_ms >= outcome.p50_ms);
//! ```

mod load;
mod metrics;
mod placement;
mod policy;

pub use load::{LoadGenerator, Request, SeededRng};
pub use metrics::{aggregate, percentile_ms, ServeOutcome, ShardSummary};
pub use placement::{ClusterView, LeastOutstanding, Placement, PlatformAffinity, RoundRobin};
pub use policy::{BatchPolicy, Deadline, Immediate, PolicyDecision, SizeK};

use crate::backend::RuntimeError;
use crate::executor::Executor;
use crate::plan::NetworkPlan;
use sma_models::Network;
use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

/// One request after the drain: when it arrived, started and finished.
#[derive(Debug, Clone, Copy)]
pub struct ServedRequest {
    /// Trace identity.
    pub id: u64,
    /// Index into the simulation's network table.
    pub network: usize,
    /// Simulated arrival, ms.
    pub arrival_ms: f64,
    /// Simulated instant its batch started executing, ms.
    pub start_ms: f64,
    /// Simulated instant its batch completed, ms.
    pub completion_ms: f64,
    /// Size of the batch that carried it.
    pub batch_size: usize,
}

impl ServedRequest {
    /// End-to-end latency: queueing plus batched execution.
    #[must_use]
    pub fn latency_ms(&self) -> f64 {
        self.completion_ms - self.arrival_ms
    }

    /// Time spent queued before the batch launched.
    #[must_use]
    pub fn wait_ms(&self) -> f64 {
        self.start_ms - self.arrival_ms
    }
}

/// One executed batch: which plan replayed, when, and for how long.
#[derive(Debug, Clone, Copy)]
pub struct BatchRecord {
    /// Index into the simulation's network table.
    pub network: usize,
    /// Requests in the batch (the plan's batch dimension).
    pub size: usize,
    /// Simulated launch instant, ms.
    pub start_ms: f64,
    /// `NetworkPlan::run().total_ms` of the batched plan.
    pub service_ms: f64,
}

/// Everything one shard did during its drain.
#[derive(Debug, Clone)]
pub struct ShardReport {
    /// Shard index.
    pub shard: usize,
    /// Backend name of the shard's executor.
    pub platform: &'static str,
    /// Served requests, in completion order.
    pub requests: Vec<ServedRequest>,
    /// Executed batches, in launch order.
    pub batches: Vec<BatchRecord>,
    /// Simulated milliseconds spent executing.
    pub busy_ms: f64,
    /// Simulated instant the last batch completed (0 if idle).
    pub makespan_ms: f64,
    /// `(network, batch)` plan keys this drain compiled on top of the
    /// pre-seeded batch-1 set, in compilation order.
    pub plans_compiled: Vec<(usize, usize)>,
}

/// A compiled serving cluster: the shard executors, the hosted
/// networks, and the batch-1 plan/cost matrix.
///
/// Everything here depends only on (executor, network) — not on the
/// policy, placement or trace — so one cluster compiles once and is
/// shared (via `Arc`) by every [`ServeSim`] admission over it, e.g.
/// the nine policy × placement combos of the serving benchmark.
#[derive(Debug)]
pub struct ServeCluster {
    shards: Vec<Executor>,
    platforms: Vec<&'static str>,
    networks: Vec<Network>,
    /// `unit_plans[shard][network]`: pre-compiled batch-1 plan.
    unit_plans: Vec<Vec<NetworkPlan>>,
    /// `unit_service_ms[shard][network]`: one batch-1 replay's total.
    unit_service_ms: Vec<Vec<f64>>,
}

impl ServeCluster {
    /// Compiles a batch-1 [`NetworkPlan`] per shard × network (warming
    /// each backend's GEMM cache) and freezes the cost matrix
    /// placements consult.
    ///
    /// # Errors
    ///
    /// Propagates the first [`RuntimeError`] from a backend rejecting a
    /// hosted network during plan compilation.
    ///
    /// # Panics
    ///
    /// Panics if `shards` or `networks` is empty.
    pub fn try_new(shards: Vec<Executor>, networks: Vec<Network>) -> Result<Self, RuntimeError> {
        assert!(!shards.is_empty(), "a cluster needs at least one shard");
        assert!(!networks.is_empty(), "a cluster needs at least one network");
        let mut unit_plans = Vec::with_capacity(shards.len());
        let mut unit_service_ms = Vec::with_capacity(shards.len());
        for executor in &shards {
            let mut plans = Vec::with_capacity(networks.len());
            let mut costs = Vec::with_capacity(networks.len());
            for network in &networks {
                let plan = executor.with_batch(1).try_plan(network)?;
                costs.push(plan.run().total_ms);
                plans.push(plan);
            }
            unit_plans.push(plans);
            unit_service_ms.push(costs);
        }
        Ok(ServeCluster {
            platforms: shards.iter().map(|e| e.backend().name()).collect(),
            shards,
            networks,
            unit_plans,
            unit_service_ms,
        })
    }

    /// Number of shards.
    #[must_use]
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The hosted network table, in request-index order.
    #[must_use]
    pub fn networks(&self) -> &[Network] {
        &self.networks
    }

    /// The executor behind a shard.
    #[must_use]
    pub fn shard_executor(&self, shard: usize) -> &Executor {
        &self.shards[shard]
    }

    /// The batch-1 cost matrix (`[shard][network]`, ms).
    #[must_use]
    pub fn unit_service_ms(&self) -> &[Vec<f64>] {
        &self.unit_service_ms
    }

    /// Backend name per shard, in shard order.
    #[must_use]
    pub fn platforms(&self) -> &[&'static str] {
        &self.platforms
    }

    /// The pre-compiled batch-1 plan a shard holds for a network.
    #[must_use]
    pub fn unit_plan(&self, shard: usize, network: usize) -> &NetworkPlan {
        &self.unit_plans[shard][network]
    }

    /// The immutable view placements decide from.
    #[must_use]
    pub fn view(&self) -> ClusterView<'_> {
        ClusterView {
            platforms: &self.platforms,
            unit_service_ms: &self.unit_service_ms,
        }
    }
}

/// A fully admitted serving simulation, ready to drain.
///
/// Construction runs the placement over the trace against a compiled
/// [`ServeCluster`]. [`ServeSim::simulate_shard`] is `&self` and pure,
/// so shard drains parallelise freely.
#[derive(Debug)]
pub struct ServeSim {
    cluster: Arc<ServeCluster>,
    policy: Arc<dyn BatchPolicy>,
    /// `assigned[shard]`: the requests routed there, arrival order.
    assigned: Vec<Vec<Request>>,
}

impl ServeSim {
    /// Compiles a fresh [`ServeCluster`] from `shards` × `networks`
    /// and admits `trace` into it. To serve several traces or
    /// policy/placement combinations over one cluster, compile the
    /// cluster once and use [`ServeSim::admit`].
    ///
    /// # Errors
    ///
    /// Propagates the first [`RuntimeError`] from a backend rejecting a
    /// hosted network during plan compilation.
    ///
    /// # Panics
    ///
    /// Panics if `shards` or `networks` is empty, if the trace is not
    /// in arrival order, if a trace request names a network outside
    /// the table, or if `placement` returns an out-of-range shard.
    pub fn try_new(
        shards: Vec<Executor>,
        networks: Vec<Network>,
        policy: Arc<dyn BatchPolicy>,
        placement: &mut dyn Placement,
        trace: &[Request],
    ) -> Result<Self, RuntimeError> {
        let cluster = Arc::new(ServeCluster::try_new(shards, networks)?);
        Ok(Self::admit(cluster, policy, placement, trace))
    }

    /// Admits `trace` into an already-compiled cluster: walks the
    /// requests in arrival order and lets `placement` pin each to a
    /// shard. No plan compilation happens here, so re-admitting the
    /// same cluster under different policies or placements is cheap.
    ///
    /// # Panics
    ///
    /// Panics if the trace is not in arrival order, if a request names
    /// a network outside the cluster's table, or if `placement`
    /// returns an out-of-range shard.
    #[must_use]
    pub fn admit(
        cluster: Arc<ServeCluster>,
        policy: Arc<dyn BatchPolicy>,
        placement: &mut dyn Placement,
        trace: &[Request],
    ) -> Self {
        // The drain's admission cursor and the backlog-aware placements
        // both assume arrival order; an unsorted trace would silently
        // skew every latency, so reject it loudly here.
        assert!(
            trace.windows(2).all(|w| w[0].arrival_ms <= w[1].arrival_ms),
            "trace must be sorted by arrival_ms"
        );
        let mut assigned: Vec<Vec<Request>> = vec![Vec::new(); cluster.shard_count()];
        let view = cluster.view();
        for request in trace {
            assert!(
                request.network < cluster.networks.len(),
                "request {} targets unknown network {}",
                request.id,
                request.network
            );
            let shard = placement.assign(request, &view);
            assert!(
                shard < assigned.len(),
                "placement routed request {} to shard {shard} of {}",
                request.id,
                assigned.len()
            );
            assigned[shard].push(*request);
        }
        ServeSim {
            cluster,
            policy,
            assigned,
        }
    }

    /// The compiled cluster this admission runs over.
    #[must_use]
    pub fn cluster(&self) -> &Arc<ServeCluster> {
        &self.cluster
    }

    /// Number of shards in the cluster.
    #[must_use]
    pub fn shard_count(&self) -> usize {
        self.cluster.shard_count()
    }

    /// The hosted network table, in request-index order.
    #[must_use]
    pub fn networks(&self) -> &[Network] {
        self.cluster.networks()
    }

    /// The executor behind a shard.
    #[must_use]
    pub fn shard_executor(&self, shard: usize) -> &Executor {
        self.cluster.shard_executor(shard)
    }

    /// The requests admission routed to a shard, in arrival order.
    #[must_use]
    pub fn assigned(&self, shard: usize) -> &[Request] {
        &self.assigned[shard]
    }

    /// The batch-1 cost matrix (`[shard][network]`, ms) placements saw.
    #[must_use]
    pub fn unit_service_ms(&self) -> &[Vec<f64>] {
        self.cluster.unit_service_ms()
    }

    /// Drains one shard's queues on the simulated clock.
    ///
    /// # Panics
    ///
    /// Panics if the shard's backend rejects a batched plan compile;
    /// use [`ServeSim::try_simulate_shard`] to handle that as a value
    /// (the five built-in backends never reject a batch of a network
    /// they already planned at batch 1, but a custom size-limited
    /// backend may).
    #[must_use]
    pub fn simulate_shard(&self, shard: usize) -> ShardReport {
        self.try_simulate_shard(shard)
            .expect("backend rejected a batched plan; use try_simulate_shard")
    }

    /// Drains one shard's queues, surfacing backend rejections.
    ///
    /// Pure in `&self`: repeat calls (and calls from any thread) return
    /// identical reports. Batched service time is a real
    /// [`NetworkPlan::run`] replay of the plan compiled at the batch's
    /// exact size, so serve-layer costs are bit-identical to direct
    /// executor runs (pinned by the serve-parity suite).
    ///
    /// # Errors
    ///
    /// Propagates a [`RuntimeError`] from the backend rejecting a lazy
    /// batched-plan compile mid-drain (a custom backend may accept a
    /// shape at batch 1 but reject it scaled by the batch size).
    pub fn try_simulate_shard(&self, shard: usize) -> Result<ShardReport, RuntimeError> {
        let assigned = &self.assigned[shard];
        let networks = self.cluster.networks();
        // Service times memoized per (network, batch): each plan is
        // compiled and replayed once, after which the batch costs one
        // map lookup per dispatch. Batch-1 costs come from the
        // cluster's pre-compiled plans (same `run().total_ms` fold, so
        // bit-identical).
        let mut service_cache: HashMap<(usize, usize), f64> = self.cluster.unit_service_ms[shard]
            .iter()
            .enumerate()
            .map(|(net, &ms)| ((net, 1), ms))
            .collect();
        let mut plans_compiled = Vec::new();

        let mut queues: Vec<VecDeque<Request>> = vec![VecDeque::new(); networks.len()];
        let mut future_per_net = vec![0usize; networks.len()];
        for request in assigned {
            future_per_net[request.network] += 1;
        }

        let mut report = ShardReport {
            shard,
            platform: self.cluster.platforms[shard],
            requests: Vec::with_capacity(assigned.len()),
            batches: Vec::new(),
            busy_ms: 0.0,
            makespan_ms: 0.0,
            plans_compiled: Vec::new(),
        };

        let mut next = 0usize; // cursor into the shard's assignment
        let mut now_ms = 0.0_f64;
        loop {
            // Admit everything that has arrived by `now_ms`.
            while next < assigned.len() && assigned[next].arrival_ms <= now_ms {
                let request = assigned[next];
                future_per_net[request.network] -= 1;
                queues[request.network].push_back(request);
                next += 1;
            }
            if next == assigned.len() && queues.iter().all(VecDeque::is_empty) {
                break;
            }

            // Ask the policy about every non-empty queue; dispatch the
            // ready queue whose head has waited longest (FIFO across
            // networks, ties to the lowest network index).
            let mut dispatch: Option<(usize, usize, f64)> = None; // (net, take, head arrival)
            let mut wake_ms = f64::INFINITY;
            for (net, queue) in queues.iter_mut().enumerate() {
                if queue.is_empty() {
                    continue;
                }
                // O(1) when the ring has not wrapped since the last
                // front drain; policies see a plain FIFO slice.
                let contiguous: &[Request] = queue.make_contiguous();
                match self
                    .policy
                    .decide(contiguous, now_ms, future_per_net[net] > 0)
                {
                    PolicyDecision::Dispatch { take } => {
                        let take = take.clamp(1, contiguous.len());
                        let head = contiguous[0].arrival_ms;
                        let earlier = dispatch.is_none_or(|(_, _, best)| head < best);
                        if earlier {
                            dispatch = Some((net, take, head));
                        }
                    }
                    PolicyDecision::WaitUntil(at) => wake_ms = wake_ms.min(at),
                    PolicyDecision::WaitForArrivals => {}
                }
            }

            if let Some((net, take, _)) = dispatch {
                let service_ms = match service_cache.entry((net, take)) {
                    std::collections::hash_map::Entry::Occupied(hit) => *hit.get(),
                    std::collections::hash_map::Entry::Vacant(slot) => {
                        let plan = self
                            .cluster
                            .shard_executor(shard)
                            .with_batch(take)
                            .try_plan(&networks[net])?;
                        plans_compiled.push((net, take));
                        *slot.insert(plan.run().total_ms)
                    }
                };
                let completion_ms = now_ms + service_ms;
                report.batches.push(BatchRecord {
                    network: net,
                    size: take,
                    start_ms: now_ms,
                    service_ms,
                });
                for request in queues[net].drain(..take) {
                    report.requests.push(ServedRequest {
                        id: request.id,
                        network: request.network,
                        arrival_ms: request.arrival_ms,
                        start_ms: now_ms,
                        completion_ms,
                        batch_size: take,
                    });
                }
                report.busy_ms += service_ms;
                report.makespan_ms = completion_ms;
                now_ms = completion_ms;
                continue;
            }

            // Nothing ready: advance to the next deadline expiry or the
            // next arrival, whichever comes first.
            if next < assigned.len() {
                wake_ms = wake_ms.min(assigned[next].arrival_ms);
            }
            assert!(
                wake_ms.is_finite() && wake_ms > now_ms,
                "shard {shard} stalled at {now_ms} ms (policy never becomes ready)"
            );
            now_ms = wake_ms;
        }

        report.plans_compiled = plans_compiled;
        Ok(report)
    }

    /// Drains every shard on the calling thread, in shard order.
    ///
    /// # Panics
    ///
    /// Panics if a backend rejects a batched plan compile; see
    /// [`ServeSim::simulate_shard`].
    #[must_use]
    pub fn run_serial(&self) -> Vec<ShardReport> {
        (0..self.shard_count())
            .map(|s| self.simulate_shard(s))
            .collect()
    }

    /// Drains every shard on the calling thread, surfacing backend
    /// rejections.
    ///
    /// # Errors
    ///
    /// Propagates the first [`RuntimeError`] from a batched plan
    /// compile; see [`ServeSim::try_simulate_shard`].
    pub fn try_run_serial(&self) -> Result<Vec<ShardReport>, RuntimeError> {
        (0..self.shard_count())
            .map(|s| self.try_simulate_shard(s))
            .collect()
    }

    /// Folds shard reports into the cluster-wide outcome.
    ///
    /// # Panics
    ///
    /// Panics if `reports` is not one report per shard in shard order
    /// (mixing reports across simulations would silently misattribute
    /// utilization).
    #[must_use]
    pub fn outcome(&self, reports: &[ShardReport]) -> ServeOutcome {
        assert_eq!(reports.len(), self.shard_count(), "one report per shard");
        for (i, report) in reports.iter().enumerate() {
            assert_eq!(report.shard, i, "reports must be in shard order");
        }
        aggregate(reports)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::platform::Platform;
    use sma_models::zoo;

    fn small_sim(policy: Arc<dyn BatchPolicy>, placement: &mut dyn Placement) -> ServeSim {
        let shards = vec![
            Executor::new(Platform::Sma3),
            Executor::new(Platform::GpuTensorCore),
        ];
        let networks = vec![zoo::alexnet(), zoo::vgg_a()];
        let trace = LoadGenerator::new(11, 2.0).trace(120, networks.len());
        ServeSim::try_new(shards, networks, policy, placement, &trace).unwrap()
    }

    #[test]
    fn every_request_is_served_exactly_once() {
        let sim = small_sim(Arc::new(Immediate), &mut RoundRobin::default());
        let reports = sim.run_serial();
        let mut ids: Vec<u64> = reports
            .iter()
            .flat_map(|r| r.requests.iter().map(|q| q.id))
            .collect();
        ids.sort_unstable();
        assert_eq!(ids, (0..120).collect::<Vec<u64>>());
        let outcome = sim.outcome(&reports);
        assert_eq!(outcome.requests, 120);
        assert!(outcome.p50_ms > 0.0);
    }

    #[test]
    fn batches_never_start_before_their_requests_arrive() {
        let sim = small_sim(
            Arc::new(Deadline::new(5.0, 8)),
            &mut LeastOutstanding::default(),
        );
        for report in sim.run_serial() {
            for request in &report.requests {
                assert!(request.start_ms >= request.arrival_ms - 1e-12);
                assert!(request.completion_ms > request.start_ms);
            }
            // Batches execute back to back, never overlapping.
            for pair in report.batches.windows(2) {
                assert!(pair[1].start_ms >= pair[0].start_ms + pair[0].service_ms - 1e-9);
            }
        }
    }

    #[test]
    fn size_k_forms_full_batches_until_the_tail() {
        let sim = small_sim(Arc::new(SizeK::new(4)), &mut RoundRobin::default());
        let reports = sim.run_serial();
        let sizes: Vec<usize> = reports
            .iter()
            .flat_map(|r| r.batches.iter().map(|b| b.size))
            .collect();
        assert!(sizes.iter().all(|&s| s <= 4));
        assert!(
            sizes.iter().filter(|&&s| s == 4).count() > sizes.len() / 2,
            "most batches reach k: {sizes:?}"
        );
    }

    #[test]
    fn repeat_drains_are_identical() {
        let sim = small_sim(
            Arc::new(Deadline::new(3.0, 16)),
            &mut PlatformAffinity::default(),
        );
        let a = sim.run_serial();
        let b = sim.run_serial();
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.busy_ms.to_bits(), y.busy_ms.to_bits());
            assert_eq!(x.makespan_ms.to_bits(), y.makespan_ms.to_bits());
            assert_eq!(x.requests.len(), y.requests.len());
            for (p, q) in x.requests.iter().zip(&y.requests) {
                assert_eq!(p.id, q.id);
                assert_eq!(p.completion_ms.to_bits(), q.completion_ms.to_bits());
            }
        }
    }

    #[test]
    fn affinity_places_each_network_on_one_platform() {
        let sim = small_sim(Arc::new(Immediate), &mut PlatformAffinity::default());
        for net in 0..sim.networks().len() {
            let hosts: std::collections::BTreeSet<&str> = (0..sim.shard_count())
                .filter(|&s| sim.assigned(s).iter().any(|r| r.network == net))
                .map(|s| sim.shard_executor(s).backend().name())
                .collect();
            assert!(hosts.len() <= 1, "network {net} spread over {hosts:?}");
        }
    }
}
