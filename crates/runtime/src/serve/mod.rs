//! Event-driven multi-shard serving over compiled [`NetworkPlan`]s.
//!
//! The compile-once layer ([`Executor::plan`](crate::Executor::plan) →
//! [`NetworkPlan::run`]) gives the runtime a lock-free replay
//! primitive; this module builds the distribution layer above it: N
//! shards, each an [`Executor`] holding pre-compiled plans for the
//! networks it hosts, fed from an open-loop request trace through a
//! pluggable [`BatchPolicy`] and [`Placement`] strategy.
//!
//! The control flow is a **discrete-event simulation**: one
//! deterministic event queue carries arrival, batch-close and
//! service-complete events, totally ordered by `(time, class,
//! sequence)`. `Placement` and `BatchPolicy` are online decision
//! points invoked at event time with a [`ClusterView`] of the live
//! cluster — per-shard backlog, in-flight batches and plan-cache
//! residency. The wall clock is never consulted, so a serve run is a
//! pure function of (trace, cluster, policy, placement, config):
//! byte-identical across repeat runs and across any worker-thread
//! count.
//!
//! On top of the engine sit:
//!
//! * **SLO accounting**: the [`LoadGenerator`] stamps per-request
//!   deadlines, [`EarliestDeadlineFirst`] schedules by them, and
//!   [`ServeOutcome`] reports deadline misses and goodput for every
//!   policy.
//! * **Bounded plan memory**: each shard's plan cache has a byte
//!   budget ([`CacheBudget`]) with LRU eviction, compile-on-miss
//!   is charged as simulated latency, and the admission controller
//!   re-places or rejects requests whose plan can never fit.
//! * **A legacy-parity shim** ([`EngineConfig::legacy`]): preplaced
//!   admission, unbounded cache, free compiles — bit-for-bit the
//!   pre-engine three-phase (admit → drain → aggregate) pipeline.
//! * **Fault tolerance**: a seeded [`FaultPlan`] injects crashes,
//!   degrade windows, compile stalls and transient compile failures
//!   as first-class events; [`RetryPolicy`], [`HedgePolicy`] and
//!   [`ShedPolicy`] govern recovery, and the outcome reports sheds,
//!   retries, hedges, failovers and downtime per shard and per SLO
//!   class (see `docs/FAULT_TOLERANCE.md`). An empty plan — the
//!   default — leaves the engine byte-identical to the fault-free
//!   path.
//! * **A threaded live twin** ([`LiveServer`]): the same cluster,
//!   policy and placement run as real threads fed over MPSC queues,
//!   paced onto wall-clock time; every run records its realized
//!   arrival trace, and [`replay`] + [`discrete_outcomes`] check the
//!   live run against the discrete-event engine as an oracle (see
//!   `docs/LIVE_SERVING.md`).
//!
//! ```
//! use sma_models::zoo;
//! use sma_runtime::serve::{
//!     Deadline, EngineConfig, LoadGenerator, RoundRobin, ServeSim,
//! };
//! use sma_runtime::{Executor, Platform};
//! use std::sync::Arc;
//!
//! let shards = vec![
//!     Executor::new(Platform::Sma3),
//!     Executor::new(Platform::GpuTensorCore),
//! ];
//! let networks = vec![zoo::alexnet(), zoo::vgg_a()];
//! let trace = LoadGenerator::new(7, 4.0)
//!     .with_slo(40.0)
//!     .trace(200, networks.len());
//! let sim = ServeSim::try_new(
//!     shards,
//!     networks,
//!     Arc::new(Deadline::new(8.0, 16)),
//!     &trace,
//!     EngineConfig::default(),
//! )
//! .unwrap();
//! let run = sim.try_run(&mut RoundRobin::default()).unwrap();
//! let outcome = sim.outcome(&run);
//! assert_eq!(outcome.requests, 200);
//! assert!(outcome.p99_ms >= outcome.p50_ms);
//! assert!(outcome.goodput <= 1.0);
//! ```

mod engine;
mod fault;
mod live;
mod load;
mod metrics;
mod oracle;
mod placement;
mod policy;
mod scale;
mod slo;
mod transport;

pub use engine::{Admission, CacheBudget, EngineConfig, ServeRun};
pub use fault::{
    ClassFaultStats, FaultEvent, FaultKind, FaultMix, FaultPlan, HedgePolicy, RetryPolicy,
    ShardFaultStats, ShedPolicy,
};
pub use live::{LiveConfig, LiveError, LiveMode, LiveReport, LiveServer};
pub use load::{LoadGenerator, LoadShape, Request, SeededRng};
pub use metrics::{
    aggregate, percentile_ms, ClassSummary, PlanCacheStats, ServeOutcome, ShardSummary,
};
pub use oracle::{diff_outcomes, discrete_outcomes, replay, DiscreteOutcomes};
pub use placement::{
    ClusterView, HealthWeighted, LeastBacklog, LeastOutstanding, Placement, PlatformAffinity,
    RoundRobin,
};
pub use policy::{BatchPolicy, Deadline, Immediate, PolicyDecision, SizeK};
pub use scale::{AutoscalePolicy, EnergyFrontier, ReconfigPolicy, ReconfigStats, ScaleStats};
pub use slo::{EarliestDeadlineFirst, PreemptPolicy};
pub use transport::TransportModel;

use crate::backend::RuntimeError;
use crate::executor::Executor;
use crate::plan::NetworkPlan;
use sma_models::Network;
use std::sync::Arc;

/// One request after the drain: when it arrived, started and finished.
#[derive(Debug, Clone, Copy)]
pub struct ServedRequest {
    /// Trace identity.
    pub id: u64,
    /// Index into the simulation's network table.
    pub network: usize,
    /// Simulated arrival, ms.
    pub arrival_ms: f64,
    /// Absolute SLO deadline, ms (`f64::INFINITY` without an SLO).
    pub deadline_ms: f64,
    /// SLO class (0 = highest priority; class-free traces are all 0).
    pub class: u8,
    /// Simulated instant its batch started (compile included), ms.
    pub start_ms: f64,
    /// Simulated instant its batch completed, ms.
    pub completion_ms: f64,
    /// Size of the batch that carried it.
    pub batch_size: usize,
}

impl ServedRequest {
    /// End-to-end latency: queueing plus batched execution.
    #[must_use]
    pub fn latency_ms(&self) -> f64 {
        self.completion_ms - self.arrival_ms
    }

    /// Time spent queued before the batch launched.
    #[must_use]
    pub fn wait_ms(&self) -> f64 {
        self.start_ms - self.arrival_ms
    }

    /// Whether the request finished within its SLO deadline.
    #[must_use]
    pub fn met_deadline(&self) -> bool {
        self.completion_ms <= self.deadline_ms
    }
}

/// One executed batch: which plan replayed, when, and for how long.
#[derive(Debug, Clone, Copy)]
pub struct BatchRecord {
    /// Index into the simulation's network table.
    pub network: usize,
    /// Requests in the batch (the plan's batch dimension).
    pub size: usize,
    /// Simulated launch instant, ms.
    pub start_ms: f64,
    /// `NetworkPlan::run().total_ms` of the batched plan.
    pub service_ms: f64,
    /// Simulated plan-compile charge billed before execution (0 on a
    /// plan-cache hit or under free compiles).
    pub compile_ms: f64,
}

/// Everything one shard did during the run.
#[derive(Debug, Clone)]
pub struct ShardReport {
    /// Shard index.
    pub shard: usize,
    /// Backend name of the shard's executor.
    pub platform: &'static str,
    /// Served requests, in completion order.
    pub requests: Vec<ServedRequest>,
    /// Executed batches, in launch order.
    pub batches: Vec<BatchRecord>,
    /// Simulated milliseconds spent executing (compiles included).
    pub busy_ms: f64,
    /// Simulated instant the last batch completed (0 if idle).
    pub makespan_ms: f64,
    /// `(network, batch)` plan keys this run compiled on top of the
    /// pre-seeded batch-1 set, in compilation order.
    pub plans_compiled: Vec<(usize, usize)>,
    /// Simulated plan-cache counters.
    pub cache: PlanCacheStats,
    /// Time-weighted mean queued-request count over the cluster
    /// horizon.
    pub queue_depth_mean: f64,
    /// Worst instantaneous queued-request count.
    pub queue_depth_max: usize,
    /// Fault and recovery counters (all zero in fault-free runs).
    pub fault: ShardFaultStats,
}

/// A compiled serving cluster: the shard executors, the hosted
/// networks, and the batch-1 plan/cost matrix.
///
/// Everything here depends only on (executor, network) — not on the
/// policy, placement, trace or engine config — so one cluster compiles
/// once and is shared (via `Arc`) by every [`ServeSim`] over it, e.g.
/// every combo of the serving benchmark matrix.
#[derive(Debug)]
pub struct ServeCluster {
    shards: Vec<Executor>,
    platforms: Vec<&'static str>,
    networks: Vec<Network>,
    /// `unit_plans[shard][network]`: pre-compiled batch-1 plan.
    unit_plans: Vec<Vec<NetworkPlan>>,
    /// `unit_service_ms[shard][network]`: one batch-1 replay's total.
    unit_service_ms: Vec<Vec<f64>>,
    /// `unit_plan_bytes[shard][network]`: the plan's resident size
    /// ([`NetworkPlan::mem_bytes`] — batch-invariant, so it prices
    /// every batch size of the network).
    unit_plan_bytes: Vec<Vec<u64>>,
}

impl ServeCluster {
    /// Compiles a batch-1 [`NetworkPlan`] per shard × network (warming
    /// each backend's GEMM cache) and freezes the cost and plan-size
    /// matrices placements and the admission controller consult.
    ///
    /// # Errors
    ///
    /// Propagates the first [`RuntimeError`] from a backend rejecting a
    /// hosted network during plan compilation.
    ///
    /// # Panics
    ///
    /// Panics if `shards` or `networks` is empty.
    pub fn try_new(shards: Vec<Executor>, networks: Vec<Network>) -> Result<Self, RuntimeError> {
        assert!(!shards.is_empty(), "a cluster needs at least one shard");
        assert!(!networks.is_empty(), "a cluster needs at least one network");
        let mut unit_plans = Vec::with_capacity(shards.len());
        let mut unit_service_ms = Vec::with_capacity(shards.len());
        let mut unit_plan_bytes = Vec::with_capacity(shards.len());
        for executor in &shards {
            let mut plans = Vec::with_capacity(networks.len());
            let mut costs = Vec::with_capacity(networks.len());
            let mut bytes = Vec::with_capacity(networks.len());
            for network in &networks {
                let plan = executor.with_batch(1).try_plan(network)?;
                costs.push(plan.run().total_ms);
                bytes.push(plan.mem_bytes());
                plans.push(plan);
            }
            unit_plans.push(plans);
            unit_service_ms.push(costs);
            unit_plan_bytes.push(bytes);
        }
        Ok(ServeCluster {
            platforms: shards.iter().map(|e| e.backend().name()).collect(),
            shards,
            networks,
            unit_plans,
            unit_service_ms,
            unit_plan_bytes,
        })
    }

    /// Number of shards.
    #[must_use]
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The hosted network table, in request-index order.
    #[must_use]
    pub fn networks(&self) -> &[Network] {
        &self.networks
    }

    /// The executor behind a shard.
    #[must_use]
    pub fn shard_executor(&self, shard: usize) -> &Executor {
        &self.shards[shard]
    }

    /// The batch-1 cost matrix (`[shard][network]`, ms).
    #[must_use]
    pub fn unit_service_ms(&self) -> &[Vec<f64>] {
        &self.unit_service_ms
    }

    /// The plan-size matrix (`[shard][network]`, bytes).
    #[must_use]
    pub fn unit_plan_bytes(&self) -> &[Vec<u64>] {
        &self.unit_plan_bytes
    }

    /// Backend name per shard, in shard order.
    #[must_use]
    pub fn platforms(&self) -> &[&'static str] {
        &self.platforms
    }

    /// The pre-compiled batch-1 plan a shard holds for a network.
    #[must_use]
    pub fn unit_plan(&self, shard: usize, network: usize) -> &NetworkPlan {
        &self.unit_plans[shard][network]
    }
}

/// A serving simulation: a compiled cluster, a batching policy, an
/// arrival trace and the engine configuration.
///
/// [`ServeSim::try_run`] executes the discrete-event engine; it borrows
/// `self` immutably, so one simulation can be re-run (pass a fresh
/// [`Placement`] — strategies carry cursor/backlog state) and runs of
/// different simulations over one shared cluster can proceed from
/// different threads.
#[derive(Debug)]
pub struct ServeSim {
    cluster: Arc<ServeCluster>,
    policy: Arc<dyn BatchPolicy>,
    trace: Vec<Request>,
    config: EngineConfig,
}

impl ServeSim {
    /// Compiles a fresh [`ServeCluster`] from `shards` × `networks`
    /// and wraps it with `trace` and `config`. To serve several traces
    /// or policy/placement combinations over one cluster, compile the
    /// cluster once and use [`ServeSim::with_cluster`].
    ///
    /// # Errors
    ///
    /// Propagates the first [`RuntimeError`] from a backend rejecting a
    /// hosted network during plan compilation.
    ///
    /// # Panics
    ///
    /// Panics if `shards` or `networks` is empty, if the trace is not
    /// in arrival order, or if a trace request names a network outside
    /// the table.
    pub fn try_new(
        shards: Vec<Executor>,
        networks: Vec<Network>,
        policy: Arc<dyn BatchPolicy>,
        trace: &[Request],
        config: EngineConfig,
    ) -> Result<Self, RuntimeError> {
        let cluster = Arc::new(ServeCluster::try_new(shards, networks)?);
        Ok(Self::with_cluster(cluster, policy, trace, config))
    }

    /// Wraps an already-compiled cluster. No plan compilation happens
    /// here, so building many simulations over one cluster is cheap.
    ///
    /// # Panics
    ///
    /// Panics if the trace is not in arrival order or if a request
    /// names a network outside the cluster's table.
    #[must_use]
    pub fn with_cluster(
        cluster: Arc<ServeCluster>,
        policy: Arc<dyn BatchPolicy>,
        trace: &[Request],
        config: EngineConfig,
    ) -> Self {
        // The event queue merges the trace as a sorted stream and the
        // backlog-aware placements assume arrival order; an unsorted
        // trace would silently skew every latency, so reject it loudly.
        assert!(
            trace.windows(2).all(|w| w[0].arrival_ms <= w[1].arrival_ms),
            "trace must be sorted by arrival_ms"
        );
        for request in trace {
            assert!(
                request.network < cluster.networks().len(),
                "request {} targets unknown network {}",
                request.id,
                request.network
            );
        }
        ServeSim {
            cluster,
            policy,
            trace: trace.to_vec(),
            config,
        }
    }

    /// The compiled cluster this simulation runs over.
    #[must_use]
    pub fn cluster(&self) -> &Arc<ServeCluster> {
        &self.cluster
    }

    /// The engine configuration.
    #[must_use]
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// The batching policy.
    #[must_use]
    pub fn policy(&self) -> &Arc<dyn BatchPolicy> {
        &self.policy
    }

    /// The arrival trace, in arrival order.
    #[must_use]
    pub fn trace(&self) -> &[Request] {
        &self.trace
    }

    /// Number of shards in the cluster.
    #[must_use]
    pub fn shard_count(&self) -> usize {
        self.cluster.shard_count()
    }

    /// The hosted network table, in request-index order.
    #[must_use]
    pub fn networks(&self) -> &[Network] {
        self.cluster.networks()
    }

    /// The executor behind a shard.
    #[must_use]
    pub fn shard_executor(&self, shard: usize) -> &Executor {
        self.cluster.shard_executor(shard)
    }

    /// The batch-1 cost matrix (`[shard][network]`, ms).
    #[must_use]
    pub fn unit_service_ms(&self) -> &[Vec<f64>] {
        self.cluster.unit_service_ms()
    }

    /// Runs the discrete-event engine over the trace, surfacing
    /// backend rejections as values.
    ///
    /// `placement` must be fresh (strategies carry state); re-running
    /// with an equally fresh placement reproduces the result
    /// byte-for-byte.
    ///
    /// # Errors
    ///
    /// Propagates a [`RuntimeError`] from the backend rejecting a lazy
    /// batched-plan compile mid-run (a custom backend may accept a
    /// shape at batch 1 but reject it scaled by the batch size).
    /// Panics if `placement` routes out of range or a policy wedges a
    /// queue (never becomes ready).
    pub fn try_run(&self, placement: &mut dyn Placement) -> Result<ServeRun, RuntimeError> {
        engine::run_engine(
            &self.cluster,
            self.policy.as_ref(),
            placement,
            &self.trace,
            &self.config,
        )
    }

    /// Folds a run into the cluster-wide outcome.
    ///
    /// # Panics
    ///
    /// Panics if `run` is not one report per shard in shard order
    /// (mixing runs across simulations would silently misattribute
    /// utilization).
    #[must_use]
    pub fn outcome(&self, run: &ServeRun) -> ServeOutcome {
        assert_eq!(
            run.reports.len(),
            self.shard_count(),
            "one report per shard"
        );
        for (i, report) in run.reports.iter().enumerate() {
            assert_eq!(report.shard, i, "reports must be in shard order");
        }
        aggregate(run)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::platform::Platform;
    use sma_models::zoo;

    fn small_sim(policy: Arc<dyn BatchPolicy>, config: EngineConfig) -> ServeSim {
        let shards = vec![
            Executor::new(Platform::Sma3),
            Executor::new(Platform::GpuTensorCore),
        ];
        let networks = vec![zoo::alexnet(), zoo::vgg_a()];
        let trace = LoadGenerator::new(11, 2.0)
            .with_slo(30.0)
            .trace(120, networks.len());
        ServeSim::try_new(shards, networks, policy, &trace, config).unwrap()
    }

    #[test]
    fn every_request_is_served_exactly_once() {
        let sim = small_sim(Arc::new(Immediate), EngineConfig::default());
        let run = sim.try_run(&mut RoundRobin::default()).unwrap();
        let mut ids: Vec<u64> = run
            .reports
            .iter()
            .flat_map(|r| r.requests.iter().map(|q| q.id))
            .collect();
        ids.sort_unstable();
        assert_eq!(ids, (0..120).collect::<Vec<u64>>());
        assert!(run.rejected.is_empty());
        let outcome = sim.outcome(&run);
        assert_eq!(outcome.requests, 120);
        assert!(outcome.p50_ms > 0.0);
        assert!(outcome.p999_ms >= outcome.p99_ms);
        // Unbounded cache: no evictions, exact counter balance.
        assert_eq!(outcome.cache.evictions, 0);
        assert_eq!(
            outcome.cache.hits + outcome.cache.misses,
            outcome.cache.lookups
        );
    }

    #[test]
    fn batches_never_start_before_their_requests_arrive() {
        let sim = small_sim(Arc::new(Deadline::new(5.0, 8)), EngineConfig::default());
        let run = sim.try_run(&mut LeastOutstanding::default()).unwrap();
        for report in &run.reports {
            for request in &report.requests {
                assert!(request.start_ms >= request.arrival_ms - 1e-12);
                assert!(request.completion_ms > request.start_ms);
            }
            // Batches execute back to back, never overlapping.
            for pair in report.batches.windows(2) {
                assert!(
                    pair[1].start_ms
                        >= pair[0].start_ms + pair[0].compile_ms + pair[0].service_ms - 1e-9
                );
            }
        }
    }

    #[test]
    fn size_k_forms_full_batches_until_the_tail() {
        let sim = small_sim(Arc::new(SizeK::new(4)), EngineConfig::default());
        let run = sim.try_run(&mut RoundRobin::default()).unwrap();
        let sizes: Vec<usize> = run
            .reports
            .iter()
            .flat_map(|r| r.batches.iter().map(|b| b.size))
            .collect();
        assert!(sizes.iter().all(|&s| s <= 4));
        assert!(
            sizes.iter().filter(|&&s| s == 4).count() > sizes.len() / 2,
            "most batches reach k: {sizes:?}"
        );
    }

    #[test]
    fn repeat_runs_are_identical_with_fresh_placements() {
        for config in [EngineConfig::default(), EngineConfig::legacy()] {
            let sim = small_sim(Arc::new(Deadline::new(3.0, 16)), config);
            let a = sim.try_run(&mut PlatformAffinity::default()).unwrap();
            let b = sim.try_run(&mut PlatformAffinity::default()).unwrap();
            for (x, y) in a.reports.iter().zip(&b.reports) {
                assert_eq!(x.busy_ms.to_bits(), y.busy_ms.to_bits());
                assert_eq!(x.makespan_ms.to_bits(), y.makespan_ms.to_bits());
                assert_eq!(x.requests.len(), y.requests.len());
                for (p, q) in x.requests.iter().zip(&y.requests) {
                    assert_eq!(p.id, q.id);
                    assert_eq!(p.completion_ms.to_bits(), q.completion_ms.to_bits());
                }
            }
        }
    }

    #[test]
    fn affinity_places_each_network_on_one_platform() {
        let sim = small_sim(Arc::new(Immediate), EngineConfig::default());
        let run = sim.try_run(&mut PlatformAffinity::default()).unwrap();
        for net in 0..sim.networks().len() {
            let hosts: std::collections::BTreeSet<&str> = run
                .reports
                .iter()
                .filter(|r| r.requests.iter().any(|q| q.network == net))
                .map(|r| r.platform)
                .collect();
            assert!(hosts.len() <= 1, "network {net} spread over {hosts:?}");
        }
    }

    #[test]
    fn least_backlog_uses_the_live_view() {
        // Online admission: the live-backlog placement spreads load
        // across both shards even though round-robin state is absent.
        let sim = small_sim(Arc::new(Immediate), EngineConfig::default());
        let run = sim.try_run(&mut LeastBacklog).unwrap();
        assert!(
            run.reports.iter().all(|r| !r.requests.is_empty()),
            "both shards serve under least-backlog"
        );
    }
}
