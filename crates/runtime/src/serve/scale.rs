//! The serve-time control plane: cost-aware autoscaling and
//! traffic-mix backend reconfiguration.
//!
//! Both features are **first-class engine events** — the autoscaler is
//! a periodic tick in the one global event queue (its class sorts after
//! every fault/recovery event at the same instant), never a background
//! thread, and reconfiguration decisions are pure functions of the
//! admission history. That keeps every control-plane action inside the
//! determinism boundary: a run with autoscaling and reconfiguration
//! enabled is still a pure function of (trace, cluster, policy,
//! placement, config). `docs/AUTOSCALING.md` derives the semantics.
//!
//! * [`AutoscalePolicy`] adds/drains shards against a
//!   **goodput-per-joule frontier** ([`EnergyFrontier`]): per shard,
//!   the expected joules to serve one request of the observed traffic
//!   mix, computed from the `sma-energy` ledger over the cluster's
//!   pre-compiled batch-1 plans. Scale-up activates the cheapest
//!   eligible shard, scale-down drains the costliest — and a shard is
//!   eligible only while its cost stays within `1 + energy_headroom`
//!   of the frontier optimum. **Drain-before-remove**: a draining
//!   shard stops accepting placements but finishes its queue and
//!   in-flight batch before it parks. A zero (or negative) headroom
//!   disables the control loop entirely — no tick events are even
//!   scheduled — so the engine degenerates **bit-identically** to the
//!   fixed-shard fleet (pinned by `tests/serve_scale.rs`).
//! * [`ReconfigPolicy`] drives the `Reconfigurable` backend capability
//!   (ArrayFlex pipeline span, FlexSA tile mode): instead of picking a
//!   fabric configuration per GEMM shape, a reconfigurable shard pins
//!   one configuration per observed **traffic mix** — a shape
//!   histogram over a sliding window of the shard's admissions —
//!   re-evaluated every `every` admissions. Decisions read only the
//!   arrival/placement history (never completion timing), so
//!   reconfiguration sits inside the live-twin oracle's timing-robust
//!   envelope (pinned by `tests/serve_live.rs`).

use super::ServeCluster;
use sma_energy::EnergyModel;

/// Cost-aware autoscaling: hysteresis-damped add/drain decisions
/// against the energy frontier, evaluated at a fixed simulated period.
///
/// Backlog is normalised per *active* shard; a sustained load above
/// `high_watermark` (for `hysteresis_ticks` consecutive evaluations)
/// re-activates the cheapest eligible shard, a sustained load at or
/// below `low_watermark` drains the costliest — never below
/// `min_active` accepting shards. Every action resets both streaks, so
/// the action rate is bounded by `evaluations / hysteresis_ticks`: the
/// loop cannot flap faster than its own damping.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AutoscalePolicy {
    /// Evaluation period, simulated ms (finite, positive).
    pub period_ms: f64,
    /// Backlog per active shard that counts toward scaling up.
    pub high_watermark: f64,
    /// Backlog per active shard that counts toward draining.
    pub low_watermark: f64,
    /// Consecutive evaluations a condition must hold before acting.
    pub hysteresis_ticks: u32,
    /// Accepting shards are never drained below this floor.
    pub min_active: usize,
    /// Energy budget: a shard is eligible for activation only while
    /// its joules-per-request under the observed mix stays within
    /// `1 + energy_headroom` of the frontier optimum. `<= 0` disables
    /// the autoscaler outright (bit-identical to the static fleet).
    pub energy_headroom: f64,
}

impl Default for AutoscalePolicy {
    fn default() -> Self {
        AutoscalePolicy {
            period_ms: 50.0,
            high_watermark: 4.0,
            low_watermark: 1.0,
            hysteresis_ticks: 2,
            min_active: 1,
            energy_headroom: 0.25,
        }
    }
}

impl AutoscalePolicy {
    /// Whether the control loop runs at all: a zero-headroom energy
    /// budget cannot pay for any fleet change, so the engine schedules
    /// no tick events and stays bit-identical to the static fleet.
    #[must_use]
    pub fn enabled(&self) -> bool {
        self.energy_headroom > 0.0
    }

    /// Validates the policy against a cluster size.
    ///
    /// # Panics
    ///
    /// Panics on a non-positive/non-finite period, non-finite or
    /// inverted watermarks, zero hysteresis, or a `min_active` outside
    /// `1..=shard_count` — each would wedge or bias the loop silently.
    pub fn validate(&self, shard_count: usize) {
        assert!(
            self.period_ms.is_finite() && self.period_ms > 0.0,
            "autoscale period must be finite and positive"
        );
        assert!(
            self.high_watermark.is_finite()
                && self.low_watermark.is_finite()
                && self.low_watermark >= 0.0
                && self.high_watermark >= self.low_watermark,
            "autoscale watermarks must be finite with high >= low >= 0"
        );
        assert!(self.hysteresis_ticks >= 1, "hysteresis needs >= 1 tick");
        assert!(
            self.min_active >= 1 && self.min_active <= shard_count,
            "min_active must be within 1..=shard_count"
        );
        assert!(
            self.energy_headroom.is_finite(),
            "energy headroom must be finite"
        );
    }
}

/// The goodput-per-joule frontier: expected joules to serve one
/// request, per shard, under a weighted network mix.
///
/// Built once per run from the cluster's pre-compiled batch-1 plans
/// through the `sma-energy` access-ledger model — a pure function of
/// (cluster, model), so the frontier never perturbs event timing.
#[derive(Debug, Clone)]
pub struct EnergyFrontier {
    /// `joules[shard][network]`: energy of one batch-1 inference.
    joules: Vec<Vec<f64>>,
}

impl EnergyFrontier {
    /// Prices every `(shard, network)` pair by replaying the cluster's
    /// batch-1 plan ledgers through `model`.
    #[must_use]
    pub fn from_cluster(cluster: &ServeCluster, model: &EnergyModel) -> Self {
        let joules = (0..cluster.shard_count())
            .map(|shard| {
                (0..cluster.networks().len())
                    .map(|net| {
                        cluster
                            .unit_plan(shard, net)
                            .run()
                            .energy(model)
                            .total_joules()
                            .max(f64::MIN_POSITIVE)
                    })
                    .collect()
            })
            .collect();
        EnergyFrontier { joules }
    }

    #[cfg(test)]
    pub(super) fn from_joules(joules: Vec<Vec<f64>>) -> Self {
        EnergyFrontier { joules }
    }

    /// Expected joules for one request of the observed mix on `shard`.
    /// `mix` is a per-network arrival count; an all-zero mix (nothing
    /// observed yet) falls back to a uniform mix.
    #[must_use]
    pub fn cost_per_request(&self, shard: usize, mix: &[u64]) -> f64 {
        let row = &self.joules[shard];
        let total: u64 = mix.iter().sum();
        if total == 0 {
            return row.iter().sum::<f64>() / row.len() as f64;
        }
        row.iter()
            .zip(mix)
            .map(|(&j, &count)| j * (count as f64))
            .sum::<f64>()
            / total as f64
    }

    /// The frontier optimum: the cheapest cost any shard offers under
    /// the mix.
    #[must_use]
    pub fn frontier_cost(&self, mix: &[u64]) -> f64 {
        (0..self.joules.len())
            .map(|shard| self.cost_per_request(shard, mix))
            .fold(f64::INFINITY, f64::min)
    }

    /// The cheapest shard among `candidates` (ties to the lowest
    /// index; `None` for an empty candidate set).
    pub(super) fn cheapest(
        &self,
        mix: &[u64],
        candidates: impl Iterator<Item = usize>,
    ) -> Option<usize> {
        candidates
            .fold(None, |best: Option<(usize, f64)>, shard| {
                let cost = self.cost_per_request(shard, mix);
                match best {
                    Some((_, best_cost)) if best_cost <= cost => best,
                    _ => Some((shard, cost)),
                }
            })
            .map(|(shard, _)| shard)
    }

    /// The costliest shard among `candidates` (ties to the highest
    /// index; `None` for an empty candidate set).
    pub(super) fn costliest(
        &self,
        mix: &[u64],
        candidates: impl Iterator<Item = usize>,
    ) -> Option<usize> {
        candidates
            .fold(None, |worst: Option<(usize, f64)>, shard| {
                let cost = self.cost_per_request(shard, mix);
                match worst {
                    Some((_, worst_cost)) if worst_cost > cost => worst,
                    _ => Some((shard, cost)),
                }
            })
            .map(|(shard, _)| shard)
    }
}

/// Autoscaler counters of one run (all zero without an enabled
/// [`AutoscalePolicy`]), reported in `ServeRun::scale`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScaleStats {
    /// Scale ticks evaluated.
    pub evaluations: u64,
    /// Shards (re-)activated, drain cancellations included.
    pub scale_ups: u64,
    /// Drains initiated.
    pub scale_downs: u64,
    /// Drains that ran to completion (shard parked empty).
    pub drains_completed: u64,
    /// Shards still accepting work when the run ended.
    pub final_active: usize,
}

/// Serve-time backend reconfiguration: pin one fabric configuration
/// per observed traffic mix instead of one per GEMM shape.
///
/// Each reconfigurable shard keeps a sliding window of its last
/// `window` admitted networks and, every `every` admissions, re-pins
/// the configuration minimising total pinned compute cycles over the
/// window's shape histogram (pure integer arithmetic — no float ties).
/// Batches then pay the pinned configuration's latency penalty
/// relative to per-shape-best, exactly the paper's
/// efficiency/flexibility trade moved into the serving loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReconfigPolicy {
    /// Sliding-window length, in admitted requests per shard.
    pub window: usize,
    /// Re-evaluate the pinned configuration every this many
    /// admissions.
    pub every: usize,
}

impl Default for ReconfigPolicy {
    fn default() -> Self {
        ReconfigPolicy {
            window: 64,
            every: 16,
        }
    }
}

impl ReconfigPolicy {
    /// Validates the policy.
    ///
    /// # Panics
    ///
    /// Panics on a zero window or evaluation stride.
    pub fn validate(&self) {
        assert!(self.window >= 1, "reconfig window must be >= 1");
        assert!(self.every >= 1, "reconfig stride must be >= 1");
    }
}

/// Reconfiguration counters of one run (all zero without a
/// [`ReconfigPolicy`] or without reconfigurable shards), reported in
/// `ServeRun::reconfig`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReconfigStats {
    /// Window evaluations across all reconfigurable shards.
    pub evaluations: u64,
    /// Evaluations that actually re-pinned a different configuration.
    pub reconfigs: u64,
}

#[cfg(test)]
mod tests {
    // Exact float equality in these tests asserts bit-reproducibility
    // of exactly-representable values; an epsilon would weaken them.
    #![allow(clippy::float_cmp)]

    use super::*;

    fn frontier() -> EnergyFrontier {
        // Two networks; shard 1 is cheapest on net 0, shard 2 on net 1.
        EnergyFrontier::from_joules(vec![vec![4.0, 4.0], vec![1.0, 8.0], vec![8.0, 2.0]])
    }

    #[test]
    fn cost_weights_by_the_observed_mix() {
        let f = frontier();
        assert_eq!(f.cost_per_request(1, &[1, 0]), 1.0);
        assert_eq!(f.cost_per_request(1, &[0, 1]), 8.0);
        assert_eq!(f.cost_per_request(1, &[1, 1]), 4.5);
        // Nothing observed yet: uniform mix.
        assert_eq!(f.cost_per_request(0, &[0, 0]), 4.0);
    }

    #[test]
    fn frontier_picks_cheapest_and_costliest_with_index_ties() {
        let f = frontier();
        // Mix all on net 0: costs are [4, 1, 8].
        assert_eq!(f.cheapest(&[1, 0], 0..3), Some(1));
        assert_eq!(f.costliest(&[1, 0], 0..3), Some(2));
        assert_eq!(f.frontier_cost(&[1, 0]), 1.0);
        // A tie (shards 0 and 0' identical): lowest index wins cheapest,
        // highest index wins costliest.
        let tie = EnergyFrontier::from_joules(vec![vec![3.0], vec![3.0]]);
        assert_eq!(tie.cheapest(&[1], 0..2), Some(0));
        assert_eq!(tie.costliest(&[1], 0..2), Some(1));
        assert_eq!(f.cheapest(&[1, 0], std::iter::empty()), None);
    }

    #[test]
    fn zero_headroom_disables_the_loop() {
        let mut policy = AutoscalePolicy::default();
        assert!(policy.enabled());
        policy.energy_headroom = 0.0;
        assert!(!policy.enabled());
        policy.energy_headroom = -1.0;
        assert!(!policy.enabled());
    }

    #[test]
    fn policy_validation_accepts_the_default() {
        AutoscalePolicy::default().validate(4);
        ReconfigPolicy::default().validate();
    }

    #[test]
    #[should_panic(expected = "min_active")]
    fn min_active_cannot_exceed_the_fleet() {
        AutoscalePolicy {
            min_active: 5,
            ..AutoscalePolicy::default()
        }
        .validate(4);
    }
}
