//! Modeled inter-node transport for the live serving twin.
//!
//! The live layer runs the front door and the shard workers as real
//! threads, but the *network between them* stays a model: each hop
//! charges a fixed per-hop latency plus a serialization term
//! (`bytes / bandwidth`) to the envelope crossing it. Keeping the
//! transport modeled — pure arithmetic on simulated milliseconds, no
//! sockets, no wall clock — is what lets the discrete-event oracle
//! bound the live/replay latency gap: the engine sees no transport at
//! all, so every live latency exceeds its replay twin by at most the
//! request hop plus the response hop (plus scheduler jitter).
//!
//! This module is inside the determinism boundary and must stay
//! lint-clean: no `std::time`, no wall-clock reads.

/// Per-hop transport model applied to request and response envelopes.
///
/// `delay = latency_ms + bytes / bytes_per_ms`, with a bandwidth of
/// zero meaning "infinitely fast link" (no serialization term) so the
/// zero-value model is exactly "no transport".
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TransportModel {
    /// Fixed one-way latency per hop, in simulated milliseconds.
    pub latency_ms: f64,
    /// Link bandwidth in bytes per simulated millisecond; `0.0`
    /// disables the serialization term.
    pub bytes_per_ms: f64,
    /// Size of a request envelope (front door → shard), in bytes.
    pub request_bytes: u64,
    /// Size of a response envelope (shard → front door), in bytes.
    pub response_bytes: u64,
}

impl TransportModel {
    /// The identity transport: both hops cost exactly zero.
    #[must_use]
    pub const fn none() -> Self {
        TransportModel {
            latency_ms: 0.0,
            bytes_per_ms: 0.0,
            request_bytes: 0,
            response_bytes: 0,
        }
    }

    /// A symmetric model from one latency and one bandwidth, with
    /// envelope sizes typical of an inference RPC (a small request, a
    /// larger response carrying activations).
    #[must_use]
    pub const fn symmetric(latency_ms: f64, bytes_per_ms: f64) -> Self {
        TransportModel {
            latency_ms,
            bytes_per_ms,
            request_bytes: 4 * 1024,
            response_bytes: 64 * 1024,
        }
    }

    /// One-way delay for an envelope of `bytes`, in simulated
    /// milliseconds.
    #[must_use]
    pub fn delay_ms(&self, bytes: u64) -> f64 {
        let serialize = if self.bytes_per_ms > 0.0 {
            bytes as f64 / self.bytes_per_ms
        } else {
            0.0
        };
        self.latency_ms + serialize
    }

    /// Front door → shard hop for one request envelope.
    #[must_use]
    pub fn request_delay_ms(&self) -> f64 {
        self.delay_ms(self.request_bytes)
    }

    /// Shard → front door hop for one response envelope.
    #[must_use]
    pub fn response_delay_ms(&self) -> f64 {
        self.delay_ms(self.response_bytes)
    }

    /// Both hops together: the worst-case latency a live request pays
    /// over its engine-replay twin, before scheduler jitter.
    #[must_use]
    pub fn round_trip_ms(&self) -> f64 {
        self.request_delay_ms() + self.response_delay_ms()
    }

    /// Whether every delay this model can produce is finite and
    /// non-negative.
    #[must_use]
    pub fn is_valid(&self) -> bool {
        self.latency_ms >= 0.0
            && self.latency_ms.is_finite()
            && self.bytes_per_ms >= 0.0
            && self.bytes_per_ms.is_finite()
            && self.request_delay_ms().is_finite()
            && self.response_delay_ms().is_finite()
    }
}

#[cfg(test)]
mod tests {
    // Exact float equality below asserts pure arithmetic on
    // exactly-representable values.
    #![allow(clippy::float_cmp)]

    use super::*;

    #[test]
    fn zero_model_is_free() {
        let t = TransportModel::none();
        assert_eq!(t.request_delay_ms(), 0.0);
        assert_eq!(t.response_delay_ms(), 0.0);
        assert_eq!(t.round_trip_ms(), 0.0);
        assert!(t.is_valid());
    }

    #[test]
    fn delay_combines_latency_and_serialization() {
        let t = TransportModel {
            latency_ms: 0.5,
            bytes_per_ms: 1024.0,
            request_bytes: 2048,
            response_bytes: 4096,
        };
        assert_eq!(t.request_delay_ms(), 0.5 + 2.0);
        assert_eq!(t.response_delay_ms(), 0.5 + 4.0);
        assert_eq!(t.round_trip_ms(), 7.0);
    }

    #[test]
    fn zero_bandwidth_means_no_serialization_term() {
        let t = TransportModel {
            latency_ms: 1.5,
            bytes_per_ms: 0.0,
            request_bytes: u64::MAX,
            response_bytes: u64::MAX,
        };
        assert_eq!(t.request_delay_ms(), 1.5);
        assert!(t.is_valid());
    }

    #[test]
    fn invalid_parameters_are_detected() {
        let mut t = TransportModel::symmetric(1.0, 100.0);
        assert!(t.is_valid());
        t.latency_ms = f64::NAN;
        assert!(!t.is_valid());
        t.latency_ms = -1.0;
        assert!(!t.is_valid());
    }
}
