//! The discrete-event engine as an oracle for the live serving twin.
//!
//! A live run ([`LiveServer::run`](super::LiveServer::run)) records the
//! *realized* arrival trace — every admission instant the front door
//! actually performed, rejected requests included. Replaying that trace
//! through [`ServeSim`] under the same cluster, policy, placement and
//! engine config must reproduce the live run's **discrete outcomes**:
//!
//! * which requests were served, and on which shard;
//! * which were rejected by admission control;
//! * the per-(shard, network) batch partition — the size sequence in
//!   launch order.
//!
//! This module extracts those outcomes into a timing-free,
//! order-canonical shape ([`DiscreteOutcomes`]) and diffs two of them
//! ([`diff_outcomes`]). Timing quantities (latency percentiles,
//! makespan, busy time) are deliberately absent — those get tolerance
//! bands in tests, never equality.
//!
//! **Exactness envelope.** The equality contract holds for
//! timing-robust configurations: placements that are pure functions of
//! the trace ([`RoundRobin`](super::RoundRobin),
//! [`PlatformAffinity`](super::PlatformAffinity)) and policies whose
//! batch partition is independent of decision timing
//! ([`Immediate`](super::Immediate), [`SizeK`](super::SizeK)), with an
//! unbounded plan cache (cache counters become order-independent).
//! Load-adaptive placements read racy live gauges and legitimately
//! route differently — for those, compare conservation (every id
//! served or rejected exactly once), not placement. Timer-based
//! policies ([`Deadline`](super::Deadline)) close batches on a clock
//! the live twin samples with jitter, so their partitions carry the
//! same caveat. `docs/LIVE_SERVING.md` derives all of this.
//!
//! This module is inside the determinism boundary: pure functions of
//! [`ServeRun`] values, no wall clock.

use super::engine::{EngineConfig, ServeRun};
use super::load::Request;
use super::placement::Placement;
use super::policy::BatchPolicy;
use super::{ServeCluster, ServeSim};
use crate::backend::RuntimeError;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

/// The timing-free projection of a [`ServeRun`]: everything the oracle
/// pins exactly, in canonical (sorted) shape so two runs compare by
/// `==` regardless of completion order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DiscreteOutcomes {
    /// Served request ids per shard, in shard order.
    pub served_per_shard: Vec<BTreeSet<u64>>,
    /// Rejected request ids, sorted.
    pub rejected: Vec<u64>,
    /// Shed request ids, sorted (always empty for live runs).
    pub shed: Vec<u64>,
    /// Permanently failed request ids, sorted (always empty for live
    /// runs — live fault support is the timing-only subset).
    pub failed: Vec<u64>,
    /// Batch-size sequence per `(shard, network)`, in launch order.
    pub batch_sizes: BTreeMap<(usize, usize), Vec<usize>>,
    /// Plan-cache `(lookups, hits, misses, evictions)` per shard.
    /// Order-independent — and therefore pinnable — under an unbounded
    /// budget; see the module docs.
    pub cache_counters: Vec<(u64, u64, u64, u64)>,
}

impl DiscreteOutcomes {
    /// Total number of served requests across all shards.
    #[must_use]
    pub fn served_total(&self) -> usize {
        self.served_per_shard.iter().map(BTreeSet::len).sum()
    }
}

/// Projects a run onto its discrete outcomes.
#[must_use]
pub fn discrete_outcomes(run: &ServeRun) -> DiscreteOutcomes {
    let mut batch_sizes: BTreeMap<(usize, usize), Vec<usize>> = BTreeMap::new();
    for report in &run.reports {
        for batch in &report.batches {
            batch_sizes
                .entry((report.shard, batch.network))
                .or_default()
                .push(batch.size);
        }
    }
    let sorted_ids = |requests: &[Request]| -> Vec<u64> {
        let mut ids: Vec<u64> = requests.iter().map(|r| r.id).collect();
        ids.sort_unstable();
        ids
    };
    DiscreteOutcomes {
        served_per_shard: run
            .reports
            .iter()
            .map(|report| report.requests.iter().map(|r| r.id).collect())
            .collect(),
        rejected: sorted_ids(&run.rejected),
        shed: sorted_ids(&run.shed),
        failed: sorted_ids(&run.failed),
        batch_sizes,
        cache_counters: run
            .reports
            .iter()
            .map(|r| {
                (
                    r.cache.lookups,
                    r.cache.hits,
                    r.cache.misses,
                    r.cache.evictions,
                )
            })
            .collect(),
    }
}

/// Replays a realized trace through the discrete-event engine: the
/// oracle half of the live/replay agreement check.
///
/// `placement` must be fresh (strategies carry cursor state); pass the
/// same strategy, newly constructed, that the live run used.
///
/// # Errors
///
/// Propagates a [`RuntimeError`] from a backend rejecting a batched
/// plan compile — the same failure surface the live run has.
///
/// # Panics
///
/// Panics if `realized_trace` is unsorted (a live front door always
/// records monotone stamps) or routes to an unknown network.
pub fn replay(
    cluster: &Arc<ServeCluster>,
    policy: &Arc<dyn BatchPolicy>,
    realized_trace: &[Request],
    config: &EngineConfig,
    placement: &mut dyn Placement,
) -> Result<ServeRun, RuntimeError> {
    ServeSim::with_cluster(
        cluster.clone(),
        policy.clone(),
        realized_trace,
        config.clone(),
    )
    .try_run(placement)
}

/// Human-readable differences between two outcome projections — empty
/// when they agree exactly. `a` is conventionally the live run, `b`
/// the engine replay.
#[must_use]
pub fn diff_outcomes(a: &DiscreteOutcomes, b: &DiscreteOutcomes) -> Vec<String> {
    let mut diffs = Vec::new();
    if a.served_per_shard.len() != b.served_per_shard.len() {
        diffs.push(format!(
            "shard count: {} vs {}",
            a.served_per_shard.len(),
            b.served_per_shard.len()
        ));
        return diffs;
    }
    for (shard, (x, y)) in a
        .served_per_shard
        .iter()
        .zip(&b.served_per_shard)
        .enumerate()
    {
        if x != y {
            let only_a: Vec<u64> = x.difference(y).copied().collect();
            let only_b: Vec<u64> = y.difference(x).copied().collect();
            diffs.push(format!(
                "shard {shard} served sets differ: live-only {only_a:?}, replay-only {only_b:?}"
            ));
        }
    }
    for (label, x, y) in [
        ("rejected", &a.rejected, &b.rejected),
        ("shed", &a.shed, &b.shed),
        ("failed", &a.failed, &b.failed),
    ] {
        if x != y {
            diffs.push(format!("{label} ids differ: {x:?} vs {y:?}"));
        }
    }
    if a.batch_sizes != b.batch_sizes {
        let keys: BTreeSet<&(usize, usize)> =
            a.batch_sizes.keys().chain(b.batch_sizes.keys()).collect();
        for key in keys {
            let x = a
                .batch_sizes
                .get(key)
                .map_or(&[] as &[usize], Vec::as_slice);
            let y = b
                .batch_sizes
                .get(key)
                .map_or(&[] as &[usize], Vec::as_slice);
            if x != y {
                diffs.push(format!(
                    "batch partition differs on (shard, net) {key:?}: {x:?} vs {y:?}"
                ));
            }
        }
    }
    if a.cache_counters != b.cache_counters {
        diffs.push(format!(
            "cache counters differ: {:?} vs {:?}",
            a.cache_counters, b.cache_counters
        ));
    }
    diffs
}

#[cfg(test)]
mod tests {
    use super::super::{
        Deadline, EngineConfig, Immediate, LoadGenerator, PlatformAffinity, RoundRobin, SizeK,
    };
    use super::*;
    use crate::executor::Executor;
    use crate::platform::Platform;
    use sma_models::zoo;

    fn cluster() -> Arc<ServeCluster> {
        Arc::new(
            ServeCluster::try_new(
                vec![
                    Executor::new(Platform::Sma3),
                    Executor::new(Platform::GpuTensorCore),
                ],
                vec![zoo::alexnet(), zoo::vgg_a()],
            )
            .unwrap(),
        )
    }

    #[test]
    fn a_run_agrees_with_itself() {
        let cluster = cluster();
        let policy: Arc<dyn BatchPolicy> = Arc::new(SizeK::new(4));
        let trace = LoadGenerator::new(3, 2.0).trace(80, 2);
        let config = EngineConfig::default();
        let a = replay(
            &cluster,
            &policy,
            &trace,
            &config,
            &mut RoundRobin::default(),
        )
        .unwrap();
        let b = replay(
            &cluster,
            &policy,
            &trace,
            &config,
            &mut RoundRobin::default(),
        )
        .unwrap();
        let (oa, ob) = (discrete_outcomes(&a), discrete_outcomes(&b));
        assert_eq!(oa, ob);
        assert!(diff_outcomes(&oa, &ob).is_empty());
        assert_eq!(oa.served_total(), 80);
    }

    #[test]
    fn diff_pinpoints_routing_and_partition_changes() {
        let cluster = cluster();
        let policy: Arc<dyn BatchPolicy> = Arc::new(Immediate);
        let trace = LoadGenerator::new(5, 2.0).trace(40, 2);
        let config = EngineConfig::default();
        let rr = replay(
            &cluster,
            &policy,
            &trace,
            &config,
            &mut RoundRobin::default(),
        )
        .unwrap();
        let aff = replay(
            &cluster,
            &policy,
            &trace,
            &config,
            &mut PlatformAffinity::default(),
        )
        .unwrap();
        let diffs = diff_outcomes(&discrete_outcomes(&rr), &discrete_outcomes(&aff));
        assert!(!diffs.is_empty());
        assert!(
            diffs.iter().any(|d| d.contains("served sets differ")),
            "{diffs:?}"
        );
    }

    #[test]
    fn timer_policies_are_outside_the_exactness_envelope_but_conserve() {
        // Deadline closes batches on a clock; the projection still
        // conserves ids under any policy.
        let cluster = cluster();
        let policy: Arc<dyn BatchPolicy> = Arc::new(Deadline::new(4.0, 8));
        let trace = LoadGenerator::new(9, 1.5).with_slo(25.0).trace(60, 2);
        let run = replay(
            &cluster,
            &policy,
            &trace,
            &EngineConfig::default(),
            &mut RoundRobin::default(),
        )
        .unwrap();
        let outcomes = discrete_outcomes(&run);
        assert_eq!(outcomes.served_total() + outcomes.rejected.len(), 60);
        let batched: usize = outcomes.batch_sizes.values().flatten().sum();
        assert_eq!(batched, outcomes.served_total());
    }
}
