//! Shard placement strategies.
//!
//! Placement is an **online decision point** of the event engine:
//! strategies are invoked at each request's arrival event, in arrival
//! order, with a [`ClusterView`] of the cluster's frozen cost matrix
//! *and* its live state at that instant — per-shard backlog, in-flight
//! batch sizes and plan-cache residency. Strategies may keep mutable
//! state (cursors, load estimates); the event order is deterministic,
//! so the assignment is too. (Under the legacy-parity admission mode
//! the live fields are all zero — exactly what the pre-engine
//! sequential admission pass exposed.)

use super::load::Request;

/// What a placement strategy may inspect: the cluster's shard table,
/// the frozen batch-1 cost matrix, and the live per-shard state at the
/// decision instant.
#[derive(Debug, Clone, Copy)]
pub struct ClusterView<'a> {
    /// Backend name per shard (e.g. `3-SMA`), in shard order.
    pub platforms: &'a [&'static str],
    /// `unit_service_ms[shard][network]`: total milliseconds of one
    /// batch-1 inference of that network on that shard's backend (from
    /// the pre-compiled plans, so it is the simulation's own cost
    /// model, not an independent guess).
    pub unit_service_ms: &'a [Vec<f64>],
    /// Live backlog: requests queued (not yet dispatched) per shard.
    pub queued: &'a [usize],
    /// Live in-flight batch size per shard (0 when the shard is idle).
    pub in_flight: &'a [usize],
    /// Live plan-cache residency per shard, in bytes (0 under an
    /// unbounded cache before any dispatch, grows as plans are
    /// admitted).
    pub resident_plan_bytes: &'a [u64],
    /// Live health per shard: `false` while a [`FaultPlan`] crash has
    /// the shard down. All `true` in a fault-free run (and under the
    /// legacy preplaced shim), so health-aware strategies degenerate to
    /// their fault-free behaviour bit for bit.
    ///
    /// [`FaultPlan`]: super::FaultPlan
    pub healthy: &'a [bool],
    /// Live service-time multiplier per shard: 1.0 normally, the
    /// degrade factor while a [`FaultKind::Degrade`] window is active.
    ///
    /// [`FaultKind::Degrade`]: super::FaultKind::Degrade
    pub degrade: &'a [f64],
}

impl ClusterView<'_> {
    /// Number of shards.
    #[must_use]
    pub fn shard_count(&self) -> usize {
        self.platforms.len()
    }

    /// Live outstanding requests on a shard: queued plus in flight.
    #[must_use]
    pub fn outstanding(&self, shard: usize) -> usize {
        self.queued[shard] + self.in_flight[shard]
    }

    /// Shard indices currently healthy (up), ascending.
    pub fn healthy_shards(&self) -> impl Iterator<Item = usize> + '_ {
        (0..self.shard_count()).filter(|&s| self.healthy[s])
    }
}

/// Assigns every request to a shard.
///
/// Implementations see requests in arrival order and may carry state
/// between calls; they must not consult anything outside their state
/// and the [`ClusterView`] (determinism is load-bearing: the
/// byte-identical-report guarantee of the serving benchmark rests on
/// it).
pub trait Placement: std::fmt::Debug + Send {
    /// Short label used in reports (`round-robin`, `least-work`, …).
    fn label(&self) -> String;

    /// Picks the shard for `request` (must be `< cluster.shard_count()`).
    fn assign(&mut self, request: &Request, cluster: &ClusterView<'_>) -> usize;
}

/// Cycles through the shards, ignoring cost and load entirely.
#[derive(Debug, Clone, Copy, Default)]
pub struct RoundRobin {
    next: usize,
}

impl Placement for RoundRobin {
    fn label(&self) -> String {
        "round-robin".into()
    }

    fn assign(&mut self, _request: &Request, cluster: &ClusterView<'_>) -> usize {
        let shard = self.next % cluster.shard_count();
        self.next = (self.next + 1) % cluster.shard_count();
        shard
    }
}

/// Least-backlog: routes each request to the **healthy** shard with
/// the fewest live outstanding requests (queued + in flight) at its
/// arrival event, ties to the lowest index. Unlike
/// [`LeastOutstanding`], which maintains its own busy-horizon *model*
/// of the cluster, this strategy reads the engine's actual state — it
/// reacts to the load that is really present, including backlog
/// created by plan-compile stalls and cache evictions the model cannot
/// see. Down shards are skipped (failover); if every shard is down,
/// the request queues on the least-loaded shard and waits out the
/// recovery.
#[derive(Debug, Clone, Copy, Default)]
pub struct LeastBacklog;

impl Placement for LeastBacklog {
    fn label(&self) -> String {
        "least-backlog".into()
    }

    fn assign(&mut self, _request: &Request, cluster: &ClusterView<'_>) -> usize {
        let least = |a: &usize, b: &usize| {
            cluster
                .outstanding(*a)
                .cmp(&cluster.outstanding(*b))
                .then(a.cmp(b))
        };
        cluster
            .healthy_shards()
            .min_by(least)
            .or_else(|| (0..cluster.shard_count()).min_by(least))
            .unwrap_or(0)
    }
}

/// Least-outstanding-work: tracks a busy-horizon per shard (batch-1
/// cost of everything assigned so far, drained at simulated-arrival
/// pace) and routes each request to the shard with the smallest
/// backlog at its arrival instant. Ties break to the lowest index.
#[derive(Debug, Clone, Default)]
pub struct LeastOutstanding {
    busy_until_ms: Vec<f64>,
}

impl Placement for LeastOutstanding {
    fn label(&self) -> String {
        "least-work".into()
    }

    fn assign(&mut self, request: &Request, cluster: &ClusterView<'_>) -> usize {
        self.busy_until_ms.resize(cluster.shard_count(), 0.0);
        let shard = self
            .busy_until_ms
            .iter()
            .map(|&busy| (busy - request.arrival_ms).max(0.0))
            .enumerate()
            .min_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)))
            .map(|(i, _)| i)
            .unwrap_or(0);
        let start = self.busy_until_ms[shard].max(request.arrival_ms);
        self.busy_until_ms[shard] = start + cluster.unit_service_ms[shard][request.network];
        shard
    }
}

/// Affinity-by-platform: each network is pinned to the platform that
/// serves it fastest at batch 1, then round-robins across the shards
/// of that platform. Keeps every shard's plan working set small and
/// each network on its best silicon, at the cost of ignoring load.
///
/// The candidate-shard set per network is a pure function of the
/// cluster's frozen cost matrix, so it is derived once on first sight
/// of each network and memoized beside the round-robin cursor. Health
/// is checked live at assign time: down candidates are skipped, and
/// when the whole preferred platform is down the request fails over to
/// the healthy shard serving the network fastest.
#[derive(Debug, Clone, Default)]
pub struct PlatformAffinity {
    /// `(cursor, candidate shards)` per network, filled lazily.
    per_network: Vec<Option<(usize, Vec<usize>)>>,
}

impl Placement for PlatformAffinity {
    fn label(&self) -> String {
        "platform-affinity".into()
    }

    fn assign(&mut self, request: &Request, cluster: &ClusterView<'_>) -> usize {
        if self.per_network.len() <= request.network {
            self.per_network.resize(request.network + 1, None);
        }
        let (cursor, candidates) = self.per_network[request.network].get_or_insert_with(|| {
            let best = (0..cluster.shard_count())
                .min_by(|&a, &b| {
                    cluster.unit_service_ms[a][request.network]
                        .total_cmp(&cluster.unit_service_ms[b][request.network])
                        .then(a.cmp(&b))
                })
                .unwrap_or(0);
            let preferred = cluster.platforms[best];
            let candidates = (0..cluster.shard_count())
                .filter(|&s| cluster.platforms[s] == preferred)
                .collect();
            (0, candidates)
        });
        // Skip down candidates (at most one full lap); with every
        // candidate healthy this is the plain one-step round-robin.
        let len = candidates.len();
        for _ in 0..len {
            let shard = candidates[*cursor % len];
            *cursor = (*cursor + 1) % len;
            if cluster.healthy[shard] {
                return shard;
            }
        }
        // Whole preferred platform down: fail over to the healthy
        // shard serving this network fastest (ties to lowest index);
        // with nothing healthy anywhere, fall back to the cursor pick
        // and wait out the recovery.
        cluster
            .healthy_shards()
            .min_by(|&a, &b| {
                cluster.unit_service_ms[a][request.network]
                    .total_cmp(&cluster.unit_service_ms[b][request.network])
                    .then(a.cmp(&b))
            })
            .unwrap_or(candidates[*cursor % len])
    }
}

/// Health- and degradation-weighted placement: routes each request to
/// the healthy shard minimising `(outstanding + 1) ·
/// unit_service_ms[shard][network] · degrade[shard]` — an estimate of
/// the work ahead of the request on that shard, priced at the shard's
/// *current* (possibly degraded) speed. Ties break to the lowest
/// index; with every shard down it degenerates to least-backlog over
/// all shards.
#[derive(Debug, Clone, Copy, Default)]
pub struct HealthWeighted;

impl Placement for HealthWeighted {
    fn label(&self) -> String {
        "health-weighted".into()
    }

    fn assign(&mut self, request: &Request, cluster: &ClusterView<'_>) -> usize {
        let score = |s: usize| {
            (cluster.outstanding(s) + 1) as f64
                * cluster.unit_service_ms[s][request.network]
                * cluster.degrade[s]
        };
        cluster
            .healthy_shards()
            .min_by(|&a, &b| score(a).total_cmp(&score(b)).then(a.cmp(&b)))
            .or_else(|| {
                (0..cluster.shard_count()).min_by(|&a, &b| {
                    cluster
                        .outstanding(a)
                        .cmp(&cluster.outstanding(b))
                        .then(a.cmp(&b))
                })
            })
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const ALL_UP: [bool; 3] = [true; 3];
    const NO_DEGRADE: [f64; 3] = [1.0; 3];

    fn request(network: usize, arrival_ms: f64) -> Request {
        Request {
            id: 0,
            network,
            arrival_ms,
            deadline_ms: f64::INFINITY,
            class: 0,
        }
    }

    /// A view with all-zero live state (what offline admission sees).
    fn static_view<'a>(
        platforms: &'a [&'static str],
        costs: &'a [Vec<f64>],
        zeros: &'a [usize],
        zero_bytes: &'a [u64],
    ) -> ClusterView<'a> {
        ClusterView {
            platforms,
            unit_service_ms: costs,
            queued: zeros,
            in_flight: zeros,
            resident_plan_bytes: zero_bytes,
            healthy: &ALL_UP[..platforms.len()],
            degrade: &NO_DEGRADE[..platforms.len()],
        }
    }

    #[test]
    fn outstanding_is_exactly_queued_plus_in_flight() {
        // Every load-aware strategy must read backlog through
        // `outstanding()` — never a hand-rolled `queued + in_flight`
        // sum that could drift from this definition.
        let costs = vec![vec![1.0], vec![1.0], vec![1.0]];
        let queued = [3usize, 0, 7];
        let in_flight = [2usize, 0, 4];
        let view = ClusterView {
            platforms: &["A", "B", "C"],
            unit_service_ms: &costs,
            queued: &queued,
            in_flight: &in_flight,
            resident_plan_bytes: &[0; 3],
            healthy: &ALL_UP,
            degrade: &NO_DEGRADE,
        };
        for shard in 0..view.shard_count() {
            assert_eq!(view.outstanding(shard), queued[shard] + in_flight[shard]);
        }
    }

    #[test]
    fn round_robin_cycles() {
        let costs = vec![vec![1.0], vec![1.0], vec![1.0]];
        let view = static_view(&["A", "B", "C"], &costs, &[0; 3], &[0; 3]);
        let mut rr = RoundRobin::default();
        let picks: Vec<usize> = (0..6).map(|_| rr.assign(&request(0, 0.0), &view)).collect();
        assert_eq!(picks, [0, 1, 2, 0, 1, 2]);
    }

    #[test]
    fn least_backlog_follows_the_live_queue_depths() {
        let costs = vec![vec![1.0], vec![1.0], vec![1.0]];
        let queued = [3usize, 0, 1];
        let in_flight = [0usize, 2, 1];
        let view = ClusterView {
            platforms: &["A", "B", "C"],
            unit_service_ms: &costs,
            queued: &queued,
            in_flight: &in_flight,
            resident_plan_bytes: &[0; 3],
            healthy: &ALL_UP,
            degrade: &NO_DEGRADE,
        };
        // Outstanding: shard0=3, shard1=2, shard2=2 — tie to shard 1.
        assert_eq!(LeastBacklog.assign(&request(0, 0.0), &view), 1);
        // All idle: lowest index.
        let idle = static_view(&["A", "B", "C"], &costs, &[0; 3], &[0; 3]);
        assert_eq!(LeastBacklog.assign(&request(0, 0.0), &idle), 0);
    }

    #[test]
    fn least_outstanding_avoids_the_backlogged_shard() {
        // Shard 0 is 10x slower: after it takes the first request, the
        // next several all land on shard 1 until the backlogs balance.
        let costs = vec![vec![10.0], vec![1.0]];
        let view = static_view(&["slow", "fast"], &costs, &[0; 2], &[0; 2]);
        let mut lw = LeastOutstanding::default();
        assert_eq!(
            lw.assign(&request(0, 0.0), &view),
            0,
            "both idle: lowest index"
        );
        for _ in 0..10 {
            assert_eq!(lw.assign(&request(0, 0.0), &view), 1);
        }
        // Backlogs now equal (10 vs 10): lowest index wins again.
        assert_eq!(lw.assign(&request(0, 0.0), &view), 0);
        // Backlog drains at simulated-arrival pace: far in the future
        // both shards are idle again.
        assert_eq!(lw.assign(&request(0, 1e6), &view), 0);
    }

    #[test]
    fn affinity_routes_to_fastest_platform_round_robin() {
        // Network 0 is fastest on platform "B" (shards 1 and 2);
        // network 1 on "A" (shard 0 only).
        let costs = vec![vec![5.0, 1.0], vec![2.0, 4.0], vec![2.0, 4.0]];
        let view = static_view(&["A", "B", "B"], &costs, &[0; 3], &[0; 3]);
        let mut aff = PlatformAffinity::default();
        let n0: Vec<usize> = (0..4)
            .map(|_| aff.assign(&request(0, 0.0), &view))
            .collect();
        assert_eq!(n0, [1, 2, 1, 2], "round-robin over the B shards");
        assert_eq!(aff.assign(&request(1, 0.0), &view), 0);
    }

    #[test]
    fn least_backlog_fails_over_around_down_shards() {
        let costs = vec![vec![1.0], vec![1.0], vec![1.0]];
        let queued = [0usize, 5, 2];
        let view = ClusterView {
            platforms: &["A", "B", "C"],
            unit_service_ms: &costs,
            queued: &queued,
            in_flight: &[0; 3],
            resident_plan_bytes: &[0; 3],
            healthy: &[false, true, true],
            degrade: &NO_DEGRADE,
        };
        // Shard 0 is emptiest but down: the healthy minimum wins.
        assert_eq!(LeastBacklog.assign(&request(0, 0.0), &view), 2);
        // Everything down: fall back to the global minimum and queue.
        let dark = ClusterView {
            healthy: &[false; 3],
            ..view
        };
        assert_eq!(LeastBacklog.assign(&request(0, 0.0), &dark), 0);
    }

    #[test]
    fn affinity_skips_down_candidates_and_fails_over() {
        // Network 0 fastest on "B" (shards 1, 2); shard 1 is down.
        let costs = vec![vec![5.0], vec![2.0], vec![2.0]];
        let view = ClusterView {
            platforms: &["A", "B", "B"],
            unit_service_ms: &costs,
            queued: &[0; 3],
            in_flight: &[0; 3],
            resident_plan_bytes: &[0; 3],
            healthy: &[true, false, true],
            degrade: &NO_DEGRADE,
        };
        let mut aff = PlatformAffinity::default();
        let picks: Vec<usize> = (0..3)
            .map(|_| aff.assign(&request(0, 0.0), &view))
            .collect();
        assert_eq!(picks, [2, 2, 2], "the down candidate is skipped");
        // Whole preferred platform down: fastest healthy shard wins.
        let b_dark = ClusterView {
            healthy: &[true, false, false],
            ..view
        };
        assert_eq!(aff.assign(&request(0, 0.0), &b_dark), 0);
    }

    #[test]
    fn health_weighted_prices_load_speed_and_degradation() {
        // Shard 0 idle but 4x degraded; shard 1 fast but loaded;
        // shard 2 moderately fast, idle, healthy.
        let costs = vec![vec![2.0], vec![1.0], vec![3.0]];
        let queued = [0usize, 8, 0];
        let degrade = [4.0, 1.0, 1.0];
        let view = ClusterView {
            platforms: &["A", "B", "C"],
            unit_service_ms: &costs,
            queued: &queued,
            in_flight: &[0; 3],
            resident_plan_bytes: &[0; 3],
            healthy: &ALL_UP,
            degrade: &degrade,
        };
        // Scores: shard0 = 1·2·4 = 8, shard1 = 9·1·1 = 9, shard2 =
        // 1·3·1 = 3.
        assert_eq!(HealthWeighted.assign(&request(0, 0.0), &view), 2);
        let down2 = ClusterView {
            healthy: &[true, true, false],
            ..view
        };
        assert_eq!(
            HealthWeighted.assign(&request(0, 0.0), &down2),
            0,
            "with shard 2 down the degraded-but-idle shard wins on score"
        );
    }
}
