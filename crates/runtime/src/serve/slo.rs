//! SLO-aware scheduling: earliest-deadline-first batching.
//!
//! The policies in [`policy`](super::policy) treat time as a batching
//! knob — wait bounds limit *added* latency but know nothing about the
//! request's service-level objective. [`EarliestDeadlineFirst`] closes
//! the loop with the [`Request::deadline_ms`] the
//! [`LoadGenerator`](super::LoadGenerator) stamps on every request
//! (see [`LoadGenerator::with_slo`](super::LoadGenerator::with_slo)):
//!
//! * **Within a shard**, dispatch-ready queues launch in deadline
//!   order, not arrival order — the policy overrides
//!   [`BatchPolicy::urgency`] with the head request's deadline, which
//!   is exactly EDF for a single server.
//! * **Per queue**, an undersized batch holds for more arrivals only
//!   while the head's deadline still has more than `slack_ms` of
//!   margin; the batch-close event fires at `deadline - slack` so the
//!   request leaves in time to (just) make its SLO if the shard is
//!   free. `slack_ms` should cover one expected service time.
//!
//! Deadline *misses* are accounted by the metrics layer
//! ([`ServeOutcome::deadline_misses`](super::ServeOutcome::deadline_misses),
//! [`ServeOutcome::goodput`](super::ServeOutcome::goodput)) for every
//! policy, so EDF's effect is directly comparable against the
//! SLO-blind policies in `BENCH_serve.json`.

use super::load::Request;
use super::policy::{BatchPolicy, PolicyDecision};

/// Strict-priority preemption between SLO classes.
///
/// Classes are ordinal: class 0 is the most urgent (see
/// [`LoadGenerator::with_classes`](super::LoadGenerator::with_classes)).
/// When enabled on the engine, an arriving request whose class is at
/// least `min_class_gap` *more urgent* (numerically smaller) than every
/// request in the shard's running batch evicts that batch's remainder:
/// the partial work already performed is billed to the shard via the
/// same epoch-guard machinery crash aborts use, and the victims are
/// re-queued ahead of their own class peers — never ahead of the more
/// urgent work that displaced them. Enabling preemption also switches
/// every queue to strict class order (FIFO within a class), so the
/// urgent arrival is actually first in line after the eviction.
///
/// The decision itself is a pure function of the two class labels;
/// all timing and billing live in the engine's `Preempt` event class
/// (see `docs/AUTOSCALING.md` for the full semantics).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PreemptPolicy {
    /// Minimum class gap (arriving strictly more urgent by at least
    /// this much) before eviction triggers. Never below 1: a class
    /// must not preempt itself.
    pub min_class_gap: u8,
}

impl Default for PreemptPolicy {
    fn default() -> Self {
        PreemptPolicy { min_class_gap: 1 }
    }
}

impl PreemptPolicy {
    /// A preemption policy requiring at least `min_class_gap` classes
    /// of urgency difference (clamped to >= 1).
    #[must_use]
    pub fn new(min_class_gap: u8) -> Self {
        PreemptPolicy {
            min_class_gap: min_class_gap.max(1),
        }
    }

    /// Whether an arrival of class `arriving` evicts a running batch
    /// whose most urgent member has class `running_min`.
    #[must_use]
    pub fn preempts(&self, arriving: u8, running_min: u8) -> bool {
        u16::from(arriving) + u16::from(self.min_class_gap) <= u16::from(running_min)
    }
}

/// Earliest-deadline-first dynamic batching with an SLO slack bound.
///
/// Dispatches once `max_batch` requests are queued, once the head
/// request's deadline is within `slack_ms` (the batch-close event), or
/// once no more arrivals can reach the queue. Requests without a
/// finite deadline fall back to waiting for arrivals (they cannot miss
/// an SLO, so amortisation wins).
#[derive(Debug, Clone, Copy)]
pub struct EarliestDeadlineFirst {
    slack_ms: f64,
    max_batch: usize,
}

impl EarliestDeadlineFirst {
    /// An EDF policy closing batches `slack_ms` before the head
    /// deadline, at `max_batch` queued requests at the latest.
    #[must_use]
    pub fn new(slack_ms: f64, max_batch: usize) -> Self {
        EarliestDeadlineFirst {
            slack_ms: slack_ms.max(0.0),
            max_batch: max_batch.max(1),
        }
    }
}

impl BatchPolicy for EarliestDeadlineFirst {
    fn label(&self) -> String {
        format!("edf{:.2}ms-max{}", self.slack_ms, self.max_batch)
    }

    fn decide(&self, queue: &[Request], now_ms: f64, more_arrivals: bool) -> PolicyDecision {
        if queue.len() >= self.max_batch {
            return PolicyDecision::Dispatch {
                take: self.max_batch,
            };
        }
        if !more_arrivals {
            return PolicyDecision::Dispatch { take: queue.len() };
        }
        let close_at = queue[0].deadline_ms - self.slack_ms;
        if !close_at.is_finite() {
            // No SLO to protect: hold for amortisation.
            return PolicyDecision::WaitForArrivals;
        }
        if now_ms >= close_at {
            // The head's slack is spent — same contract as `Deadline`:
            // a ripe batch closes at the triggering event, never at
            // the next arrival.
            PolicyDecision::Dispatch { take: queue.len() }
        } else {
            PolicyDecision::WaitUntil(close_at)
        }
    }

    /// EDF proper: among dispatch-ready queues, the soonest head
    /// deadline launches first (infinite deadlines sort last).
    fn urgency(&self, queue: &[Request], _now_ms: f64) -> f64 {
        queue[0].deadline_ms
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn request(arrival_ms: f64, deadline_ms: f64) -> Request {
        Request {
            id: 0,
            network: 0,
            arrival_ms,
            deadline_ms,
            class: 0,
        }
    }

    #[test]
    fn edf_trips_on_size_slack_or_tail() {
        let policy = EarliestDeadlineFirst::new(3.0, 2);
        let q1 = [request(10.0, 20.0)];
        assert_eq!(
            policy.decide(&q1, 11.0, true),
            PolicyDecision::WaitUntil(17.0),
            "batch-close event at deadline - slack"
        );
        assert_eq!(
            policy.decide(&q1, 17.0, true),
            PolicyDecision::Dispatch { take: 1 },
            "slack spent: dispatch at the triggering event"
        );
        assert_eq!(
            policy.decide(&q1, 18.5, true),
            PolicyDecision::Dispatch { take: 1 },
            "already past the close instant (shard was busy): still now"
        );
        assert_eq!(
            policy.decide(&q1, 11.0, false),
            PolicyDecision::Dispatch { take: 1 },
            "end of trace flushes"
        );
        let q2 = [request(10.0, 20.0), request(10.5, 20.5)];
        assert_eq!(
            policy.decide(&q2, 10.5, true),
            PolicyDecision::Dispatch { take: 2 },
            "max_batch reached"
        );
    }

    #[test]
    fn edf_urgency_is_head_deadline() {
        let policy = EarliestDeadlineFirst::new(1.0, 8);
        let urgent = [request(5.0, 9.0)];
        let lax = [request(1.0, 30.0)];
        // FIFO would launch `lax` first (older head); EDF launches
        // `urgent` (sooner deadline).
        assert!(policy.urgency(&urgent, 6.0) < policy.urgency(&lax, 6.0));
    }

    #[test]
    fn preemption_requires_the_configured_class_gap() {
        let gap1 = PreemptPolicy::default();
        assert!(gap1.preempts(0, 1), "class 0 evicts class 1");
        assert!(gap1.preempts(0, 2));
        assert!(!gap1.preempts(1, 1), "a class never preempts itself");
        assert!(!gap1.preempts(2, 1), "less urgent work never preempts");
        let gap2 = PreemptPolicy::new(2);
        assert!(!gap2.preempts(0, 1), "gap 2: adjacent classes coexist");
        assert!(gap2.preempts(0, 2));
        // The gap clamps to >= 1 so self-preemption is unrepresentable,
        // and the u16 arithmetic cannot wrap at the u8 extremes.
        assert_eq!(PreemptPolicy::new(0), PreemptPolicy::default());
        assert!(!PreemptPolicy::new(u8::MAX).preempts(u8::MAX, u8::MAX));
    }

    #[test]
    fn edf_without_slo_waits_for_amortisation() {
        let policy = EarliestDeadlineFirst::new(2.0, 4);
        let q = [request(0.0, f64::INFINITY)];
        assert_eq!(
            policy.decide(&q, 1e9, true),
            PolicyDecision::WaitForArrivals
        );
        assert_eq!(
            policy.decide(&q, 1e9, false),
            PolicyDecision::Dispatch { take: 1 }
        );
    }
}
