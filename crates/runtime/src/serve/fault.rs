//! Deterministic fault injection and recovery policy.
//!
//! A [`FaultPlan`] is a pre-drawn schedule of shard faults — crashes,
//! FlexSA-style degraded windows, compile stalls and transient compile
//! failures — generated from its **own** splitmix64 stream
//! ([`SeededRng`]). The plan draws nothing from the arrival RNG, so a
//! trace generated with any seed is bit-identical with and without a
//! fault plan, and a zero-rate plan is exactly the fault-free engine
//! (pinned by `tests/serve_fault.rs`).
//!
//! Faults enter the engine as first-class events in the one global
//! queue (see `docs/FAULT_TOLERANCE.md` for the total order), and the
//! recovery side is policy: [`RetryPolicy`] (bounded attempts,
//! exponential backoff in *simulated* milliseconds, per-class
//! timeouts), opt-in [`HedgePolicy`] (duplicate a straggling request
//! onto the second-best healthy shard; first completion wins, the
//! loser is cancelled if queued and billed if in flight) and
//! [`ShedPolicy`] (admission shedding by SLO class once cluster-wide
//! backlog crosses a watermark — lowest class first).

use super::load::SeededRng;

/// What happens to a shard when a [`FaultEvent`] fires.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultKind {
    /// The shard goes dark for `recover_ms`: its in-flight batch is
    /// aborted (victims follow the [`RetryPolicy`]) and nothing
    /// dispatches until recovery.
    Crash {
        /// Simulated downtime, ms (must be finite and positive — a
        /// shard that never recovers would wedge queued requests).
        recover_ms: f64,
    },
    /// FlexSA-style reduced mode: batch service times are multiplied
    /// by `factor` for `window_ms` (the shard keeps serving, slower).
    /// Overlapping windows nest; the most recent factor wins.
    Degrade {
        /// Service-time multiplier (≥ 1).
        factor: f64,
        /// How long the degraded window lasts, ms.
        window_ms: f64,
    },
    /// Plan compiles stall: every compile-on-miss inside the window
    /// bills `extra_ms` on top of the configured compile cost.
    StallCompile {
        /// Additional simulated compile latency per miss, ms.
        extra_ms: f64,
        /// How long the stall window lasts, ms.
        window_ms: f64,
    },
    /// Plan compiles fail outright: inside the window a batch whose
    /// plan is not already resident cannot dispatch (the shard falls
    /// back to queues with resident plans, or waits the window out).
    TransientCompileFail {
        /// How long compiles keep failing, ms.
        window_ms: f64,
    },
}

/// One scheduled fault: which shard, when, what.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultEvent {
    /// Target shard index.
    pub shard: usize,
    /// Simulated instant the fault fires, ms.
    pub at_ms: f64,
    /// What happens.
    pub kind: FaultKind,
}

/// Relative weights of the four fault kinds in [`FaultPlan::generate`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultMix {
    /// Weight of [`FaultKind::Crash`].
    pub crash: f64,
    /// Weight of [`FaultKind::Degrade`].
    pub degrade: f64,
    /// Weight of [`FaultKind::StallCompile`].
    pub stall: f64,
    /// Weight of [`FaultKind::TransientCompileFail`].
    pub compile_fail: f64,
}

impl FaultMix {
    /// Even weights over all four kinds.
    #[must_use]
    pub fn balanced() -> Self {
        FaultMix {
            crash: 1.0,
            degrade: 1.0,
            stall: 1.0,
            compile_fail: 1.0,
        }
    }

    /// Mostly crashes, some transient compile failures — the mix that
    /// exercises retry/failover hardest.
    #[must_use]
    pub fn crash_heavy() -> Self {
        FaultMix {
            crash: 0.7,
            degrade: 0.0,
            stall: 0.1,
            compile_fail: 0.2,
        }
    }

    /// Mostly degraded windows plus compile stalls — shards never go
    /// dark, they just slow down.
    #[must_use]
    pub fn degrade_heavy() -> Self {
        FaultMix {
            crash: 0.0,
            degrade: 0.7,
            stall: 0.3,
            compile_fail: 0.0,
        }
    }

    fn total(&self) -> f64 {
        self.crash + self.degrade + self.stall + self.compile_fail
    }
}

/// A pre-drawn, sorted schedule of shard faults.
///
/// The schedule is a pure function of `(seed, rate, shard count,
/// horizon, mix)`; generation uses a dedicated splitmix64 stream per
/// shard, decoupled from the arrival RNG — zero extra draws on the
/// trace generator, so arrivals stay bit-identical under any plan.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// The empty plan: no faults, the engine behaves exactly as the
    /// fault-free build.
    #[must_use]
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// Whether the plan schedules no faults at all.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of scheduled faults.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// The schedule, sorted by `(at_ms, shard)`.
    #[must_use]
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Adds one hand-built fault (tests and targeted experiments),
    /// keeping the schedule sorted.
    ///
    /// # Panics
    ///
    /// Panics on non-finite instants, non-positive windows or recovery
    /// times, or a degrade factor below 1 — every one of those would
    /// wedge or bias the engine silently.
    #[must_use]
    pub fn with_event(mut self, event: FaultEvent) -> Self {
        assert!(
            event.at_ms.is_finite() && event.at_ms >= 0.0,
            "fault instant must be finite and non-negative"
        );
        match event.kind {
            FaultKind::Crash { recover_ms } => assert!(
                recover_ms.is_finite() && recover_ms > 0.0,
                "a crash must recover after a finite positive downtime"
            ),
            FaultKind::Degrade { factor, window_ms } => assert!(
                factor.is_finite() && factor >= 1.0 && window_ms.is_finite() && window_ms > 0.0,
                "degrade needs factor >= 1 and a finite positive window"
            ),
            FaultKind::StallCompile {
                extra_ms,
                window_ms,
            } => assert!(
                extra_ms.is_finite() && extra_ms >= 0.0 && window_ms.is_finite() && window_ms > 0.0,
                "compile stall needs finite extra latency and window"
            ),
            FaultKind::TransientCompileFail { window_ms } => assert!(
                window_ms.is_finite() && window_ms > 0.0,
                "compile-fail window must be finite and positive"
            ),
        }
        self.events.push(event);
        self.events
            .sort_by(|a, b| a.at_ms.total_cmp(&b.at_ms).then(a.shard.cmp(&b.shard)));
        self
    }

    /// Draws a schedule averaging `rate` faults per shard over
    /// `[0, horizon_ms)`, kinds weighted by `mix`. Each shard gets its
    /// own derived splitmix64 stream, so adding a shard never perturbs
    /// another shard's faults. `rate <= 0` (or a zero horizon) yields
    /// the empty plan.
    ///
    /// # Panics
    ///
    /// Panics on a non-finite/negative rate or horizon, or a mix with
    /// no positive weight while `rate > 0`.
    #[must_use]
    pub fn generate(
        seed: u64,
        rate: f64,
        shard_count: usize,
        horizon_ms: f64,
        mix: &FaultMix,
    ) -> Self {
        assert!(
            rate.is_finite() && rate >= 0.0,
            "fault rate must be finite and non-negative"
        );
        assert!(
            horizon_ms.is_finite() && horizon_ms >= 0.0,
            "fault horizon must be finite and non-negative"
        );
        let mut plan = FaultPlan::none();
        if rate <= 0.0 || horizon_ms <= 0.0 || shard_count == 0 {
            return plan;
        }
        let total = mix.total();
        assert!(
            total.is_finite() && total > 0.0,
            "a positive fault rate needs at least one positive mix weight"
        );
        for shard in 0..shard_count {
            // One derived stream per shard (golden-ratio spaced), fully
            // decoupled from the arrival RNG.
            let mut rng = SeededRng::new(
                seed ^ (shard as u64)
                    .wrapping_mul(0xA24B_AED4_963E_E407)
                    .wrapping_add(0x9E37_79B9_7F4A_7C15),
            );
            // sma-lint: allow(float-cast) — rate was validated finite and
            // non-negative above; floor() bounds the cast.
            let count = rate.floor() as usize + usize::from(rng.next_unit() < rate.fract());
            for _ in 0..count {
                // Faults land in the first 90% of the horizon so
                // recovery and window ends stay near the active run.
                let at_ms = rng.next_unit() * horizon_ms * 0.9;
                let pick = rng.next_unit() * total;
                let kind = if pick < mix.crash {
                    FaultKind::Crash {
                        recover_ms: (0.02 + 0.08 * rng.next_unit()) * horizon_ms,
                    }
                } else if pick < mix.crash + mix.degrade {
                    FaultKind::Degrade {
                        factor: 1.5 + 2.5 * rng.next_unit(),
                        window_ms: (0.05 + 0.15 * rng.next_unit()) * horizon_ms,
                    }
                } else if pick < mix.crash + mix.degrade + mix.stall {
                    FaultKind::StallCompile {
                        extra_ms: (0.001 + 0.004 * rng.next_unit()) * horizon_ms,
                        window_ms: (0.05 + 0.10 * rng.next_unit()) * horizon_ms,
                    }
                } else {
                    FaultKind::TransientCompileFail {
                        window_ms: (0.02 + 0.08 * rng.next_unit()) * horizon_ms,
                    }
                };
                plan = plan.with_event(FaultEvent { shard, at_ms, kind });
            }
        }
        plan
    }
}

/// Bounded retry with exponential backoff, in simulated milliseconds.
///
/// A request whose batch is aborted by a crash is re-placed after
/// `backoff_base_ms · 2^(retry-1)`, at most `max_attempts` total tries
/// (the first dispatch counts as try 1), and never past its class
/// timeout: class `k` gives up once the retry would fire more than
/// `timeout_ms · (k+1)` after arrival — lower-priority classes queue
/// longer, so they get proportionally more patience. Exhausted
/// requests land in `ServeRun::failed`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Total tries allowed per request (first dispatch included).
    pub max_attempts: u32,
    /// Backoff before retry `n` is `backoff_base_ms · 2^(n-1)`.
    pub backoff_base_ms: f64,
    /// Per-class give-up bound: class `k` abandons a retry that would
    /// fire later than `timeout_ms · (k+1)` after arrival
    /// (`f64::INFINITY` = never time out).
    pub timeout_ms: f64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 3,
            backoff_base_ms: 1.0,
            timeout_ms: f64::INFINITY,
        }
    }
}

impl RetryPolicy {
    /// Whether another retry is allowed after `retries_so_far`
    /// already-scheduled retries.
    #[must_use]
    pub fn allows(&self, retries_so_far: u32) -> bool {
        retries_so_far + 1 < self.max_attempts
    }

    /// Backoff before retry number `retry` (1-based), ms.
    #[must_use]
    pub fn backoff_ms(&self, retry: u32) -> f64 {
        let exponent = retry.saturating_sub(1).min(52);
        self.backoff_base_ms * (1u64 << exponent) as f64
    }

    /// The absolute give-up bound (relative to arrival) for a class.
    #[must_use]
    pub fn timeout_for(&self, class: u8) -> f64 {
        self.timeout_ms * f64::from(u16::from(class) + 1)
    }
}

/// Opt-in request hedging: if an admitted request has not completed
/// `delay_ms` after admission, a duplicate is enqueued on the
/// second-best healthy shard (fastest batch-1 service for the network,
/// excluding the original target). First completion wins; a queued
/// loser is cancelled, an in-flight loser runs to completion and is
/// billed as busy time but never double-counted as served.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HedgePolicy {
    /// How long a request may remain incomplete before it is hedged,
    /// ms. Derive from a tail service percentile (the benchmark uses
    /// the p99 of the cluster's batch-1 cost matrix).
    pub delay_ms: f64,
}

/// Graceful degradation by SLO class: once cluster-wide backlog
/// (queued + in flight) reaches the watermark, admission starts
/// shedding the **lowest-priority** class (the highest class number);
/// every further watermark of backlog sheds one class more. Class 0 is
/// shed only at `watermark · num_classes`. Only online admission
/// sheds — the legacy preplaced shim admits everything, preserving
/// bit-parity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShedPolicy {
    /// Cluster-wide outstanding-request count at which the lowest
    /// class starts shedding.
    pub backlog_watermark: usize,
}

impl ShedPolicy {
    /// Whether a request of `class` (0 = highest priority) is shed at
    /// `backlog` outstanding requests, with `num_classes` classes in
    /// the trace.
    #[must_use]
    pub fn sheds(&self, class: u8, num_classes: usize, backlog: usize) -> bool {
        let rank = num_classes.saturating_sub(usize::from(class));
        backlog >= self.backlog_watermark.saturating_mul(rank.max(1))
    }
}

/// Per-shard fault and recovery counters, reported in
/// `ShardReport::fault` and aggregated into `ServeOutcome`.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ShardFaultStats {
    /// Crash faults that hit this shard.
    pub crashes: u64,
    /// Total simulated milliseconds the shard was down.
    pub downtime_ms: f64,
    /// In-flight batches a crash aborted (their work is lost, not
    /// billed as busy time).
    pub aborted_batches: u64,
    /// Batches that executed inside a degraded window.
    pub degraded_batches: u64,
    /// Dispatch attempts blocked because the best ready batch needed a
    /// compile during a transient compile-failure window.
    pub compile_failures: u64,
    /// Retries scheduled for requests this shard's crashes aborted.
    pub retries: u64,
    /// Retried requests that landed here after failing over from
    /// another shard.
    pub failovers: u64,
    /// Hedge duplicates enqueued onto this shard.
    pub hedges: u64,
    /// In-flight batches an SLO-class preemption evicted (unlike a
    /// crash abort, the elapsed slice *is* billed as busy time).
    pub preemptions: u64,
    /// Requests those evictions re-queued.
    pub preempted_requests: u64,
    /// Busy milliseconds billed for evicted partial work (always less
    /// than the batch's full cost — a same-instant completion outranks
    /// the preemption event).
    pub preempted_busy_ms: f64,
}

impl ShardFaultStats {
    /// Fold another shard's counters into this one.
    pub fn absorb(&mut self, other: &ShardFaultStats) {
        self.crashes += other.crashes;
        self.downtime_ms += other.downtime_ms;
        self.aborted_batches += other.aborted_batches;
        self.degraded_batches += other.degraded_batches;
        self.compile_failures += other.compile_failures;
        self.retries += other.retries;
        self.failovers += other.failovers;
        self.hedges += other.hedges;
        self.preemptions += other.preemptions;
        self.preempted_requests += other.preempted_requests;
        self.preempted_busy_ms += other.preempted_busy_ms;
    }
}

/// Per-SLO-class recovery counters of one run (indexed by class).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClassFaultStats {
    /// Retries scheduled for this class.
    pub retries: u64,
    /// Hedge duplicates issued for this class.
    pub hedges: u64,
    /// Retries that landed on a different shard than the one that
    /// failed.
    pub failovers: u64,
    /// Requests of this class evicted by an SLO-class preemption (and
    /// re-queued).
    pub preempted: u64,
}

#[cfg(test)]
mod tests {
    // Exact float equality in these tests asserts bit-reproducibility
    // of exactly-representable values; an epsilon would weaken them.
    #![allow(clippy::float_cmp)]

    use super::*;

    #[test]
    fn zero_rate_is_the_empty_plan() {
        let plan = FaultPlan::generate(7, 0.0, 6, 1000.0, &FaultMix::balanced());
        assert!(plan.is_empty());
        assert_eq!(plan, FaultPlan::none());
        assert!(FaultPlan::generate(7, 2.0, 6, 0.0, &FaultMix::balanced()).is_empty());
    }

    #[test]
    fn same_seed_same_schedule() {
        let mix = FaultMix::balanced();
        let a = FaultPlan::generate(42, 2.5, 4, 800.0, &mix);
        let b = FaultPlan::generate(42, 2.5, 4, 800.0, &mix);
        assert_eq!(a, b);
        let c = FaultPlan::generate(43, 2.5, 4, 800.0, &mix);
        assert_ne!(a, c, "different seed, different schedule");
        assert!(!a.is_empty());
    }

    #[test]
    fn schedule_is_sorted_and_in_horizon() {
        let plan = FaultPlan::generate(11, 3.0, 5, 1000.0, &FaultMix::balanced());
        let events = plan.events();
        assert!(
            events.windows(2).all(|w| w[0].at_ms <= w[1].at_ms),
            "sorted by instant"
        );
        assert!(events.iter().all(|e| e.shard < 5));
        assert!(events.iter().all(|e| (0.0..1000.0).contains(&e.at_ms)));
    }

    #[test]
    fn adding_a_shard_never_perturbs_existing_streams() {
        let mix = FaultMix::crash_heavy();
        let four = FaultPlan::generate(9, 2.0, 4, 500.0, &mix);
        let five = FaultPlan::generate(9, 2.0, 5, 500.0, &mix);
        let only_first_four: Vec<FaultEvent> = five
            .events()
            .iter()
            .copied()
            .filter(|e| e.shard < 4)
            .collect();
        assert_eq!(four.events(), &only_first_four[..]);
    }

    #[test]
    fn mix_presets_bias_the_kinds() {
        let crashy = FaultPlan::generate(3, 4.0, 8, 1000.0, &FaultMix::crash_heavy());
        assert!(crashy
            .events()
            .iter()
            .any(|e| matches!(e.kind, FaultKind::Crash { .. })));
        assert!(!crashy
            .events()
            .iter()
            .any(|e| matches!(e.kind, FaultKind::Degrade { .. })));
        let slow = FaultPlan::generate(3, 4.0, 8, 1000.0, &FaultMix::degrade_heavy());
        assert!(slow
            .events()
            .iter()
            .any(|e| matches!(e.kind, FaultKind::Degrade { .. })));
        assert!(!slow
            .events()
            .iter()
            .any(|e| matches!(e.kind, FaultKind::Crash { .. })));
    }

    #[test]
    fn retry_policy_backoff_doubles_and_bounds_attempts() {
        let retry = RetryPolicy {
            max_attempts: 3,
            backoff_base_ms: 2.0,
            timeout_ms: 100.0,
        };
        assert_eq!(retry.backoff_ms(1), 2.0);
        assert_eq!(retry.backoff_ms(2), 4.0);
        assert_eq!(retry.backoff_ms(3), 8.0);
        assert!(retry.allows(0), "first retry (try 2 of 3)");
        assert!(retry.allows(1), "second retry (try 3 of 3)");
        assert!(!retry.allows(2), "a fourth try is out");
        assert_eq!(retry.timeout_for(0), 100.0);
        assert_eq!(retry.timeout_for(2), 300.0);
    }

    #[test]
    fn shed_policy_sheds_lowest_class_first() {
        let shed = ShedPolicy {
            backlog_watermark: 10,
        };
        // 3 classes: class 2 sheds at 10, class 1 at 20, class 0 at 30.
        assert!(!shed.sheds(2, 3, 9));
        assert!(shed.sheds(2, 3, 10));
        assert!(!shed.sheds(1, 3, 19));
        assert!(shed.sheds(1, 3, 20));
        assert!(!shed.sheds(0, 3, 29));
        assert!(shed.sheds(0, 3, 30));
    }

    #[test]
    fn hand_built_plans_stay_sorted() {
        let plan = FaultPlan::none()
            .with_event(FaultEvent {
                shard: 1,
                at_ms: 50.0,
                kind: FaultKind::Crash { recover_ms: 5.0 },
            })
            .with_event(FaultEvent {
                shard: 0,
                at_ms: 10.0,
                kind: FaultKind::Degrade {
                    factor: 2.0,
                    window_ms: 20.0,
                },
            });
        assert_eq!(plan.len(), 2);
        assert_eq!(plan.events()[0].at_ms, 10.0);
        assert_eq!(plan.events()[1].at_ms, 50.0);
    }
}
