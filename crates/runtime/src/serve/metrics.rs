//! Aggregation of shard drains into serving metrics.

use super::ShardReport;

/// Per-shard aggregate of one serve run.
#[derive(Debug, Clone)]
pub struct ShardSummary {
    /// Shard index.
    pub shard: usize,
    /// Backend name of the shard's executor.
    pub platform: &'static str,
    /// Requests the placement routed here.
    pub requests: usize,
    /// Batches the policy formed here.
    pub batches: usize,
    /// Simulated milliseconds the shard spent executing.
    pub busy_ms: f64,
    /// Busy fraction of the cluster-wide simulated horizon.
    pub utilization: f64,
}

/// Cluster-wide metrics of one serve run.
#[derive(Debug, Clone)]
pub struct ServeOutcome {
    /// Requests served (equals the trace length).
    pub requests: usize,
    /// Median request latency (queueing + batched execution), ms.
    pub p50_ms: f64,
    /// 99th-percentile request latency, ms.
    pub p99_ms: f64,
    /// Mean request latency, ms.
    pub mean_ms: f64,
    /// Worst request latency, ms.
    pub max_ms: f64,
    /// Simulated instant the last batch completed.
    pub makespan_ms: f64,
    /// Total simulated execution milliseconds across all shards.
    pub busy_ms: f64,
    /// Per-shard aggregates, in shard order.
    pub shards: Vec<ShardSummary>,
    /// `(batch size, batches formed)` in ascending size order.
    pub batch_histogram: Vec<(usize, u64)>,
}

/// Percentile of an unsorted latency set (`p` in 0..=100): the sorted
/// element at the rounded fractional index `p/100 · (n-1)` (no
/// interpolation). Returns 0 for an empty set.
#[must_use]
pub fn percentile_ms(latencies: &[f64], p: f64) -> f64 {
    let mut sorted = latencies.to_vec();
    sorted.sort_by(f64::total_cmp);
    percentile_of_sorted(&sorted, p)
}

/// [`percentile_ms`] without the sort — `sorted` must be ascending.
fn percentile_of_sorted(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = (p / 100.0 * (sorted.len() - 1) as f64).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

/// Folds the per-shard drains into the cluster-wide outcome.
#[must_use]
pub fn aggregate(reports: &[ShardReport]) -> ServeOutcome {
    let mut latencies: Vec<f64> = reports
        .iter()
        .flat_map(|r| r.requests.iter().map(|req| req.latency_ms()))
        .collect();
    let total_latency_ms: f64 = latencies.iter().sum();
    latencies.sort_by(f64::total_cmp);
    let makespan_ms = reports
        .iter()
        .map(|r| r.makespan_ms)
        .fold(0.0_f64, f64::max);
    let busy_ms: f64 = reports.iter().map(|r| r.busy_ms).sum();

    let mut histogram = std::collections::BTreeMap::new();
    for report in reports {
        for batch in &report.batches {
            *histogram.entry(batch.size).or_insert(0u64) += 1;
        }
    }

    ServeOutcome {
        requests: latencies.len(),
        p50_ms: percentile_of_sorted(&latencies, 50.0),
        p99_ms: percentile_of_sorted(&latencies, 99.0),
        mean_ms: if latencies.is_empty() {
            0.0
        } else {
            total_latency_ms / latencies.len() as f64
        },
        max_ms: latencies.last().copied().unwrap_or(0.0).max(0.0),
        makespan_ms,
        busy_ms,
        shards: reports
            .iter()
            .map(|r| ShardSummary {
                shard: r.shard,
                platform: r.platform,
                requests: r.requests.len(),
                batches: r.batches.len(),
                busy_ms: r.busy_ms,
                utilization: if makespan_ms > 0.0 {
                    r.busy_ms / makespan_ms
                } else {
                    0.0
                },
            })
            .collect(),
        batch_histogram: histogram.into_iter().collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_nearest_rank() {
        let v = [5.0, 1.0, 3.0, 2.0, 4.0];
        assert_eq!(percentile_ms(&v, 0.0), 1.0);
        assert_eq!(percentile_ms(&v, 50.0), 3.0);
        assert_eq!(percentile_ms(&v, 100.0), 5.0);
        assert_eq!(percentile_ms(&[], 50.0), 0.0);
    }
}
