//! Aggregation of shard reports into serving metrics: latency
//! percentiles (p50/p99/p99.9), SLO accounting (deadline misses,
//! goodput), queue-depth, plan-cache and fault/recovery statistics
//! (sheds, retries, hedges, failovers, downtime) — cluster-wide, per
//! shard, and per SLO class.

use super::engine::ServeRun;
use super::fault::ShardFaultStats;
use super::ShardReport;

/// Exact counters of one shard's simulated plan cache.
///
/// Invariant (pinned by the serve-engine suite):
/// `hits + misses == lookups`, and under an unbounded budget
/// `evictions == 0`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PlanCacheStats {
    /// Plan-cache probes (one per dispatched batch).
    pub lookups: u64,
    /// Probes that found the plan resident.
    pub hits: u64,
    /// Probes that had to (re-)compile the plan.
    pub misses: u64,
    /// Plans evicted to fit newly admitted ones.
    pub evictions: u64,
    /// Resident plan bytes when the run ended.
    pub resident_bytes: u64,
    /// Highest resident plan bytes at any instant of the run.
    pub peak_bytes: u64,
}

impl PlanCacheStats {
    /// Fold another shard's counters into this one (byte gauges sum;
    /// the cluster-wide peak is the sum of per-shard peaks, an upper
    /// bound).
    pub fn absorb(&mut self, other: &PlanCacheStats) {
        self.lookups += other.lookups;
        self.hits += other.hits;
        self.misses += other.misses;
        self.evictions += other.evictions;
        self.resident_bytes += other.resident_bytes;
        self.peak_bytes += other.peak_bytes;
    }
}

/// Per-shard aggregate of one serve run.
#[derive(Debug, Clone)]
pub struct ShardSummary {
    /// Shard index.
    pub shard: usize,
    /// Backend name of the shard's executor.
    pub platform: &'static str,
    /// Requests the placement routed here.
    pub requests: usize,
    /// Batches the policy formed here.
    pub batches: usize,
    /// Simulated milliseconds the shard spent executing (plan compiles
    /// included).
    pub busy_ms: f64,
    /// Busy fraction of the cluster-wide simulated horizon.
    pub utilization: f64,
    /// Served requests that finished after their deadline.
    pub deadline_misses: u64,
    /// Time-weighted mean queued-request count over the horizon.
    pub queue_depth_mean: f64,
    /// Worst instantaneous queued-request count.
    pub queue_depth_max: usize,
    /// The shard's plan-cache counters.
    pub cache: PlanCacheStats,
    /// The shard's fault and recovery counters (all zero in fault-free
    /// runs).
    pub fault: ShardFaultStats,
}

/// Per-SLO-class aggregate of one serve run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ClassSummary {
    /// The SLO class (0 = highest priority).
    pub class: u8,
    /// Requests of this class that completed.
    pub served: usize,
    /// Requests of this class dropped by the shed watermark.
    pub shed: usize,
    /// Requests of this class abandoned after exhausting retries.
    pub failed: usize,
    /// Served requests of this class that finished after their
    /// deadline.
    pub deadline_misses: u64,
    /// Retries scheduled for this class.
    pub retries: u64,
    /// Hedge duplicates issued for this class.
    pub hedges: u64,
    /// Retries of this class re-placed onto a different shard.
    pub failovers: u64,
    /// Requests of this class evicted (and re-queued) by an SLO-class
    /// preemption.
    pub preempted: u64,
}

/// Cluster-wide metrics of one serve run.
#[derive(Debug, Clone)]
pub struct ServeOutcome {
    /// Requests served (trace length minus rejections, sheds and
    /// failures).
    pub requests: usize,
    /// Requests the admission controller turned away.
    pub rejected: usize,
    /// Requests dropped by the shed watermark under backlog pressure.
    pub shed: usize,
    /// Requests abandoned after exhausting their retry policy.
    pub failed: usize,
    /// Median request latency (queueing + batched execution), ms.
    pub p50_ms: f64,
    /// 99th-percentile request latency, ms.
    pub p99_ms: f64,
    /// 99.9th-percentile request latency, ms.
    pub p999_ms: f64,
    /// Mean request latency, ms.
    pub mean_ms: f64,
    /// Worst request latency, ms.
    pub max_ms: f64,
    /// Simulated instant the last batch completed.
    pub makespan_ms: f64,
    /// Total simulated execution milliseconds across all shards.
    pub busy_ms: f64,
    /// Served requests that finished after their SLO deadline
    /// (requests without a finite deadline can never miss).
    pub deadline_misses: u64,
    /// Fraction of the offered trace that was served *and* met its
    /// deadline: served-and-on-time over
    /// `requests + rejected + shed + failed`. 1.0 for an SLO-free
    /// trace nothing was dropped from.
    pub goodput: f64,
    /// Retries scheduled across the run.
    pub retries: u64,
    /// Hedge duplicates issued across the run.
    pub hedges: u64,
    /// Retries re-placed onto a different shard.
    pub failovers: u64,
    /// Batches evicted by SLO-class preemption across the run.
    pub preemptions: u64,
    /// Requests those evictions re-queued.
    pub preempted_requests: u64,
    /// Autoscaler ticks evaluated across the run (zero when the loop
    /// is disabled — actions require sustained watermark breaches, so
    /// `scale_ups == scale_downs == 0` alone does not mean the loop
    /// never ran).
    pub scale_evaluations: u64,
    /// Autoscaler activations across the run (drain cancellations
    /// included).
    pub scale_ups: u64,
    /// Autoscaler drains initiated across the run.
    pub scale_downs: u64,
    /// Serve-time backend re-pins that changed the fabric
    /// configuration.
    pub reconfigs: u64,
    /// Traffic-mix window evaluations across all reconfigurable
    /// shards (every evaluation considers a re-pin; `reconfigs`
    /// counts the ones that changed it).
    pub reconfig_evaluations: u64,
    /// Total simulated shard downtime, ms (per-shard sum).
    pub downtime_ms: f64,
    /// Cluster-wide plan-cache counters (per-shard sums).
    pub cache: PlanCacheStats,
    /// Per-shard aggregates, in shard order.
    pub shards: Vec<ShardSummary>,
    /// Per-SLO-class aggregates, in class order (a single all-zero
    /// class for class-free traces).
    pub classes: Vec<ClassSummary>,
    /// `(batch size, batches formed)` in ascending size order.
    pub batch_histogram: Vec<(usize, u64)>,
}

/// Percentile of an unsorted latency set (`p` in 0..=100): the sorted
/// element at the rounded fractional index `p/100 · (n-1)` (no
/// interpolation). Returns 0 for an empty set.
#[must_use]
pub fn percentile_ms(latencies: &[f64], p: f64) -> f64 {
    let mut sorted = latencies.to_vec();
    sorted.sort_by(f64::total_cmp);
    percentile_of_sorted(&sorted, p)
}

/// [`percentile_ms`] without the sort — `sorted` must be ascending.
fn percentile_of_sorted(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    // sma-lint: allow(float-cast) — p is a percentile in [0, 100] and the
    // result is clamped by the min() below; the cast cannot escape bounds.
    let rank = (p / 100.0 * (sorted.len() - 1) as f64).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

/// Folds one engine run into the cluster-wide outcome: latency
/// percentiles over the served set, goodput against everything offered
/// (served + rejected + shed + failed), and the fault/recovery
/// counters rolled up per shard and per SLO class.
#[must_use]
pub fn aggregate(run: &ServeRun) -> ServeOutcome {
    let reports = &run.reports;
    let mut latencies: Vec<f64> = reports
        .iter()
        .flat_map(|r| r.requests.iter().map(|req| req.latency_ms()))
        .collect();
    let total_latency_ms: f64 = latencies.iter().sum();
    latencies.sort_by(f64::total_cmp);
    let makespan_ms = reports
        .iter()
        .map(|r| r.makespan_ms)
        .fold(0.0_f64, f64::max);
    let busy_ms: f64 = reports.iter().map(|r| r.busy_ms).sum();
    let deadline_misses: u64 = reports.iter().map(shard_misses).sum();
    let downtime_ms: f64 = reports.iter().map(|r| r.fault.downtime_ms).sum();

    let mut histogram = std::collections::BTreeMap::new();
    for report in reports {
        for batch in &report.batches {
            *histogram.entry(batch.size).or_insert(0u64) += 1;
        }
    }

    let mut cache = PlanCacheStats::default();
    let mut fault_totals = ShardFaultStats::default();
    for report in reports {
        cache.absorb(&report.cache);
        fault_totals.absorb(&report.fault);
    }

    // Per-class rollup: served/misses off the reports, shed/failed off
    // the run's buckets, recovery counters off the engine's per-class
    // stats. `class_stats` already spans every class in the trace.
    let mut classes: Vec<ClassSummary> = run
        .class_stats
        .iter()
        .enumerate()
        .map(|(class, stats)| ClassSummary {
            class: class as u8,
            retries: stats.retries,
            hedges: stats.hedges,
            failovers: stats.failovers,
            preempted: stats.preempted,
            ..ClassSummary::default()
        })
        .collect();
    let class_slot = |classes: &mut Vec<ClassSummary>, class: u8| -> usize {
        let index = usize::from(class);
        while classes.len() <= index {
            let next = classes.len() as u8;
            classes.push(ClassSummary {
                class: next,
                ..ClassSummary::default()
            });
        }
        index
    };
    for report in reports {
        for request in &report.requests {
            let slot = class_slot(&mut classes, request.class);
            classes[slot].served += 1;
            if request.completion_ms > request.deadline_ms {
                classes[slot].deadline_misses += 1;
            }
        }
    }
    for request in &run.shed {
        let slot = class_slot(&mut classes, request.class);
        classes[slot].shed += 1;
    }
    for request in &run.failed {
        let slot = class_slot(&mut classes, request.class);
        classes[slot].failed += 1;
    }

    let served = latencies.len();
    let rejected = run.rejected.len();
    let shed = run.shed.len();
    let failed = run.failed.len();
    let offered = served + rejected + shed + failed;
    ServeOutcome {
        requests: served,
        rejected,
        shed,
        failed,
        p50_ms: percentile_of_sorted(&latencies, 50.0),
        p99_ms: percentile_of_sorted(&latencies, 99.0),
        p999_ms: percentile_of_sorted(&latencies, 99.9),
        mean_ms: if latencies.is_empty() {
            0.0
        } else {
            total_latency_ms / served as f64
        },
        max_ms: latencies.last().copied().unwrap_or(0.0).max(0.0),
        makespan_ms,
        busy_ms,
        deadline_misses,
        goodput: if offered == 0 {
            1.0
        } else {
            (served as u64 - deadline_misses) as f64 / offered as f64
        },
        retries: fault_totals.retries,
        hedges: fault_totals.hedges,
        failovers: fault_totals.failovers,
        preemptions: fault_totals.preemptions,
        preempted_requests: fault_totals.preempted_requests,
        scale_evaluations: run.scale.evaluations,
        scale_ups: run.scale.scale_ups,
        scale_downs: run.scale.scale_downs,
        reconfigs: run.reconfig.reconfigs,
        reconfig_evaluations: run.reconfig.evaluations,
        downtime_ms,
        cache,
        shards: reports
            .iter()
            .map(|r| ShardSummary {
                shard: r.shard,
                platform: r.platform,
                requests: r.requests.len(),
                batches: r.batches.len(),
                busy_ms: r.busy_ms,
                utilization: if makespan_ms > 0.0 {
                    r.busy_ms / makespan_ms
                } else {
                    0.0
                },
                deadline_misses: shard_misses(r),
                queue_depth_mean: r.queue_depth_mean,
                queue_depth_max: r.queue_depth_max,
                cache: r.cache.clone(),
                fault: r.fault,
            })
            .collect(),
        classes,
        batch_histogram: histogram.into_iter().collect(),
    }
}

/// Served requests of one shard that finished after their deadline.
fn shard_misses(report: &ShardReport) -> u64 {
    report
        .requests
        .iter()
        .filter(|r| r.completion_ms > r.deadline_ms)
        .count() as u64
}

#[cfg(test)]
mod tests {
    // Exact float equality in these tests asserts bit-reproducibility
    // of exactly-representable values; an epsilon would weaken them.
    #![allow(clippy::float_cmp)]

    use super::*;

    #[test]
    fn percentile_nearest_rank() {
        let v = [5.0, 1.0, 3.0, 2.0, 4.0];
        assert_eq!(percentile_ms(&v, 0.0), 1.0);
        assert_eq!(percentile_ms(&v, 50.0), 3.0);
        assert_eq!(percentile_ms(&v, 99.9), 5.0);
        assert_eq!(percentile_ms(&v, 100.0), 5.0);
        assert_eq!(percentile_ms(&[], 50.0), 0.0);
    }

    #[test]
    fn cache_stats_absorb_sums_every_counter() {
        let mut a = PlanCacheStats {
            lookups: 10,
            hits: 6,
            misses: 4,
            evictions: 1,
            resident_bytes: 100,
            peak_bytes: 150,
        };
        let b = PlanCacheStats {
            lookups: 5,
            hits: 5,
            misses: 0,
            evictions: 0,
            resident_bytes: 50,
            peak_bytes: 50,
        };
        a.absorb(&b);
        assert_eq!(a.lookups, 15);
        assert_eq!(a.hits + a.misses, a.lookups);
        assert_eq!(a.resident_bytes, 150);
        assert_eq!(a.peak_bytes, 200);
    }
}
