//! The autonomous-driving application study (§V-C, Fig. 9).
//!
//! Three algorithms per frame: DETection (DeepLab-class CNN), TRAcking
//! (GOTURN CNN) and LOCalisation (ORB-SLAM, not CNN-based). Prior work
//! \[23\] shows detection can run every `N` frames with tracking covering
//! the gaps. The scheduling consequences differ by architecture:
//!
//! * **GPU**: everything time-shares the SIMD lanes;
//! * **TC**: DET/TRA run on the TensorCores, LOC on the SIMD lanes in
//!   parallel — but on non-DET frames the TC area idles;
//! * **SMA**: DET/TRA run in systolic mode; on non-DET frames the units
//!   reconfigure to SIMD mode and accelerate LOC's parallel portion —
//!   the dynamic reallocation only temporal integration offers.

use crate::backend::{IrregularWork, RuntimeError};
use crate::executor::Executor;
use crate::platform::Platform;
use serde::{Deserialize, Serialize};
use sma_models::{zoo, Network};

/// Latency of one algorithm on one platform, milliseconds.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FrameSchedule {
    /// Detection CNN latency with every unit in systolic mode.
    pub det_ms: f64,
    /// Detection latency when one unit is lent back to SIMD mode (the
    /// *simultaneous* multi-mode split: 3-SMA runs DET on two units while
    /// the third serves LOC).
    pub det_split_ms: f64,
    /// Tracking CNN latency.
    pub tra_ms: f64,
    /// Localisation latency (at baseline SIMD throughput).
    pub loc_ms: f64,
    /// Localisation latency when the SMA units join in SIMD mode.
    pub loc_boosted_ms: f64,
}

/// The driving pipeline on one platform.
#[derive(Debug, Clone)]
pub struct DrivingPipeline {
    platform: Platform,
    schedule: FrameSchedule,
}

impl DrivingPipeline {
    /// Builds the pipeline for a platform using the Table-II-derived
    /// workloads: DET = DeepLab (CNN portion), TRA = GOTURN,
    /// LOC = ORB-SLAM.
    ///
    /// # Panics
    ///
    /// Panics for backends without programmable SIMD lanes (the TPU):
    /// see [`DrivingPipeline::try_new`].
    #[must_use]
    pub fn new(platform: Platform) -> Self {
        // sma-lint: allow(no-panic) — documented panic; try_new is the
        // fallible form and the panic is this constructor's contract.
        Self::try_new(platform).expect("driving pipeline needs programmable lanes")
    }

    /// Fallible form of [`DrivingPipeline::new`].
    ///
    /// # Errors
    ///
    /// [`RuntimeError::UnsupportedOnBackend`] when the platform's
    /// backend reports a [`simd_mode_boost`] of zero — ORB-SLAM's
    /// localisation kernels need programmable lanes, which is precisely
    /// the §V-C argument against fixed-function offload engines.
    ///
    /// [`simd_mode_boost`]: crate::Backend::simd_mode_boost
    pub fn try_new(platform: Platform) -> Result<Self, RuntimeError> {
        if platform.simd_mode_boost() <= 0.0 {
            return Err(RuntimeError::UnsupportedOnBackend {
                backend: platform.label(),
                operation: "the DET/TRA/LOC driving pipeline (LOC needs programmable lanes)",
            });
        }
        // The driving stack skips CRF post-processing.
        let exec = Executor::builder(platform).postprocessing(false).build();
        let det = exec.run(&zoo::deeplab()).total_ms;
        let tra = exec.run(&zoo::goturn()).total_ms;
        let loc = Self::loc_ms(platform, &zoo::orb_slam(), 1.0);
        let loc_boosted = Self::loc_ms(
            platform,
            &zoo::orb_slam(),
            platform.simd_mode_boost().max(1.0),
        );
        // The simultaneous split: 3-SMA can run detection on two units
        // while the third serves SIMD work — detection then runs at
        // 2-SMA speed.
        let det_split = if platform == Platform::Sma3 {
            Executor::builder(Platform::Sma2)
                .postprocessing(false)
                .build()
                .run(&zoo::deeplab())
                .total_ms
        } else {
            det
        };
        Ok(DrivingPipeline {
            platform,
            schedule: FrameSchedule {
                det_ms: det,
                det_split_ms: det_split,
                tra_ms: tra,
                loc_ms: loc,
                loc_boosted_ms: loc_boosted,
            },
        })
    }

    /// The platform.
    #[must_use]
    pub const fn platform(&self) -> Platform {
        self.platform
    }

    /// The per-algorithm latencies.
    #[must_use]
    pub const fn schedule(&self) -> FrameSchedule {
        self.schedule
    }

    fn loc_ms(platform: Platform, net: &Network, boost: f64) -> f64 {
        let backend = platform.backend();
        net.layers()
            .iter()
            .map(|l| match IrregularWork::from_layer(l) {
                Some(work) => backend.irregular(work.with_boost(boost)).time_ms,
                // ORB-SLAM has no GEMM layers by construction.
                None => 0.0,
            })
            .sum()
    }

    /// Fig. 9 (left): single-frame latency running all three algorithms
    /// every frame.
    ///
    /// GPU/SMA run the three sequentially on the shared substrate; the TC
    /// platform overlaps LOC (SIMD lanes) with DET+TRA (TensorCores).
    #[must_use]
    pub fn frame_latency_ms(&self) -> f64 {
        let s = self.schedule;
        match self.platform {
            Platform::GpuTensorCore => (s.det_ms + s.tra_ms).max(s.loc_ms),
            // 3-SMA: detection on two units overlaps LOC on the third.
            Platform::Sma3 => s.det_split_ms.max(s.loc_ms) + s.tra_ms,
            _ => s.det_ms + s.tra_ms + s.loc_ms,
        }
    }

    /// Fig. 9 (right): average frame latency when detection runs every
    /// `skip` frames and tracking covers the rest \[23\].
    ///
    /// On SMA, the `skip-1` non-detection frames run LOC with the units
    /// reconfigured as extra SIMD lanes; the TC platform's tensor cores
    /// idle on those frames, so LOC stays at baseline speed.
    ///
    /// # Panics
    ///
    /// Panics if `skip` is zero.
    #[must_use]
    pub fn frame_latency_skipping_ms(&self, skip: u32) -> f64 {
        assert!(skip > 0, "skip must be at least 1");
        let s = self.schedule;
        let n = f64::from(skip);
        match self.platform {
            Platform::Sma2 | Platform::Sma3 => {
                // DET frame: detection on the split units overlaps LOC on
                // the remainder. Other frames: TRA + boosted LOC.
                let det_frame = s.det_split_ms.max(s.loc_ms) + s.tra_ms;
                let other = s.tra_ms + s.loc_boosted_ms;
                (det_frame + (n - 1.0) * other) / n
            }
            Platform::GpuTensorCore => {
                // DET frame overlaps LOC with DET+TRA; other frames the
                // TCs run only TRA while LOC holds the SIMD lanes.
                let det_frame = (s.det_ms + s.tra_ms).max(s.loc_ms);
                let other = s.tra_ms.max(s.loc_ms);
                (det_frame + (n - 1.0) * other) / n
            }
            _ => {
                let det_frame = s.det_ms + s.tra_ms + s.loc_ms;
                let other = s.tra_ms + s.loc_ms;
                (det_frame + (n - 1.0) * other) / n
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gpu_misses_target_accelerators_meet_it() {
        // Fig. 9 (left): the GPU exceeds the 100 ms single-frame target;
        // TC and SMA meet it.
        let gpu = DrivingPipeline::new(Platform::GpuSimd);
        let tc = DrivingPipeline::new(Platform::GpuTensorCore);
        let sma = DrivingPipeline::new(Platform::Sma3);
        assert!(
            gpu.frame_latency_ms() > 100.0,
            "GPU {:.1} ms",
            gpu.frame_latency_ms()
        );
        assert!(
            tc.frame_latency_ms() < 100.0,
            "TC {:.1}",
            tc.frame_latency_ms()
        );
        assert!(
            sma.frame_latency_ms() < 100.0,
            "SMA {:.1}",
            sma.frame_latency_ms()
        );
    }

    #[test]
    fn skipping_reduces_latency_monotonically() {
        for p in [Platform::GpuTensorCore, Platform::Sma3] {
            let pipe = DrivingPipeline::new(p);
            let mut last = f64::INFINITY;
            for n in 1..=9 {
                let t = pipe.frame_latency_skipping_ms(n);
                assert!(t <= last + 1e-9, "{p}: latency must not rise with N");
                last = t;
            }
        }
    }

    #[test]
    fn sma_benefits_more_from_skipping_than_tc() {
        // Fig. 9 (right): with N=4 the SMA frame latency drops by almost
        // 50% relative to no skipping, and sits below the TC curve.
        let sma = DrivingPipeline::new(Platform::Sma3);
        let reduction = 1.0 - sma.frame_latency_skipping_ms(4) / sma.frame_latency_skipping_ms(1);
        assert!(
            (0.35..0.65).contains(&reduction),
            "SMA N=4 reduction {reduction:.2}"
        );

        let tc = DrivingPipeline::new(Platform::GpuTensorCore);
        for n in 2..=9 {
            assert!(
                sma.frame_latency_skipping_ms(n) < tc.frame_latency_skipping_ms(n),
                "N={n}: SMA {:.1} vs TC {:.1}",
                sma.frame_latency_skipping_ms(n),
                tc.frame_latency_skipping_ms(n)
            );
        }
    }

    #[test]
    fn loc_boost_only_on_sma() {
        let sma = DrivingPipeline::new(Platform::Sma3).schedule();
        assert!(sma.loc_boosted_ms < sma.loc_ms);
        let gpu = DrivingPipeline::new(Platform::GpuSimd).schedule();
        assert!((gpu.loc_boosted_ms - gpu.loc_ms).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "skip")]
    fn zero_skip_panics() {
        let _ = DrivingPipeline::new(Platform::Sma3).frame_latency_skipping_ms(0);
    }

    #[test]
    fn tpu_has_no_lanes_for_localisation() {
        // ORB-SLAM needs programmable lanes; pricing it on the TPU's
        // streaming vector unit would silently ignore its serial solver
        // stages, so the pipeline refuses the backend outright.
        use crate::backend::RuntimeError;
        let err = DrivingPipeline::try_new(Platform::TpuHost).unwrap_err();
        assert!(matches!(
            err,
            RuntimeError::UnsupportedOnBackend { backend: "TPU", .. }
        ));
    }
}
