//! Platform definitions and the shared irregular-op execution model.

use serde::{Deserialize, Serialize};
use sma_core::{SimdGemmModel, SmaConfig, SmaGemmModel};
use sma_core::model::GemmEstimate;
use sma_accel::{TcGemmModel, TpuSim};
use sma_mem::MemStats;
use sma_sim::GpuConfig;
use sma_tensor::GemmShape;

/// The five platforms of the evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Platform {
    /// Baseline Volta SIMD lanes (FP32 CUTLASS-style GEMM).
    GpuSimd,
    /// Volta with its four TensorCores doing the GEMMs (spatial
    /// integration).
    GpuTensorCore,
    /// Two SMA units per SM (iso-FLOP with 4-TC).
    Sma2,
    /// Three SMA units per SM (iso-area; the temporal-integration win).
    Sma3,
    /// A TPU-v2 core plus host CPU over the cloud link.
    TpuHost,
}

impl Platform {
    /// Short label used in experiment tables (paper nomenclature).
    #[must_use]
    pub const fn label(self) -> &'static str {
        match self {
            Platform::GpuSimd => "SIMD",
            Platform::GpuTensorCore => "4-TC",
            Platform::Sma2 => "2-SMA",
            Platform::Sma3 => "3-SMA",
            Platform::TpuHost => "TPU",
        }
    }

    /// All GPU-family platforms in Fig. 8 order.
    #[must_use]
    pub const fn gpu_family() -> [Platform; 4] {
        [
            Platform::GpuSimd,
            Platform::GpuTensorCore,
            Platform::Sma2,
            Platform::Sma3,
        ]
    }

    /// GEMM estimate on this platform's matrix engine.
    ///
    /// # Panics
    ///
    /// Panics for [`Platform::TpuHost`] — TPU estimates carry different
    /// units and flow through [`TpuSim`] directly.
    #[must_use]
    pub fn gemm(&self, shape: GemmShape) -> GemmEstimate {
        match self {
            Platform::GpuSimd => SimdGemmModel::new(GpuConfig::volta()).estimate(shape),
            Platform::GpuTensorCore => TcGemmModel::new(GpuConfig::volta()).estimate(shape),
            Platform::Sma2 => SmaGemmModel::new(SmaConfig::iso_flop_2sma()).estimate(shape),
            Platform::Sma3 => SmaGemmModel::new(SmaConfig::iso_area_3sma()).estimate(shape),
            Platform::TpuHost => panic!("TPU GEMM estimates flow through TpuSim"),
        }
    }

    /// Multiplier on SIMD throughput available for irregular work.
    ///
    /// The SMA platforms reconfigure their units into SIMD lanes when not
    /// running GEMMs: 3 units = 192 FP32-lane-equivalents vs. the
    /// baseline 64 — the "dynamic resource allocation" of §V-C. The TC
    /// platform's tensor cores cannot run irregular code at all.
    #[must_use]
    pub const fn simd_mode_boost(self) -> f64 {
        match self {
            Platform::GpuSimd | Platform::GpuTensorCore => 1.0,
            Platform::Sma2 => 2.0,
            Platform::Sma3 => 3.0,
            Platform::TpuHost => 0.0, // no programmable lanes at all
        }
    }
}

impl std::fmt::Display for Platform {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// GPU execution model for an irregular (GEMM-incompatible) op.
///
/// `parallel_fraction` of the FLOPs run across the SIMD lanes at 50% issue
/// efficiency (divergence, gathers); the serial remainder crawls at
/// single-thread GPU speed; bandwidth is capped by the op's
/// `memory_efficiency`; a fixed launch overhead is charged.
#[must_use]
pub fn gpu_irregular_ms(
    gpu: &GpuConfig,
    flops: u64,
    bytes: u64,
    parallel_fraction: f64,
    memory_efficiency: f64,
    simd_boost: f64,
) -> f64 {
    const LAUNCH_MS: f64 = 0.02;
    const ISSUE_EFFICIENCY: f64 = 0.5;
    const SERIAL_GFLOPS: f64 = 2.0;

    let peak_flops = gpu.simd_fp32_tflops() * 1e12 * simd_boost.max(1e-9);
    let par = flops as f64 * parallel_fraction / (peak_flops * ISSUE_EFFICIENCY) * 1e3;
    let serial = flops as f64 * (1.0 - parallel_fraction) / (SERIAL_GFLOPS * 1e9) * 1e3;
    let bw = gpu.dram_bytes_per_cycle_per_sm * f64::from(gpu.sms) * gpu.clock_ghz * 1e9;
    let mem = bytes as f64 / (bw * memory_efficiency.max(1e-9)) * 1e3;
    par.max(mem) + serial + LAUNCH_MS
}

/// Approximate access ledger of an irregular GPU op (for the energy
/// model): every byte through L1/L2/DRAM, one ALU op per FLOP.
#[must_use]
pub fn gpu_irregular_ledger(flops: u64, bytes: u64) -> MemStats {
    let mut m = MemStats::default();
    m.dram_bytes = bytes;
    m.l1_misses = bytes / 128;
    m.l2_misses = bytes / 128;
    m.alu_ops = flops;
    m.rf_reads = flops / 32;
    m.rf_writes = flops / 64;
    m.instructions = flops / 32;
    m
}

/// Shared TPU instance for the `TpuHost` platform.
#[must_use]
pub fn tpu() -> TpuSim {
    TpuSim::default()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_and_family() {
        assert_eq!(Platform::Sma3.label(), "3-SMA");
        assert_eq!(Platform::gpu_family().len(), 4);
        assert_eq!(Platform::GpuSimd.to_string(), "SIMD");
    }

    #[test]
    fn gemm_dispatches_per_platform() {
        let shape = GemmShape::square(1024);
        let simd = Platform::GpuSimd.gemm(shape).time_ms;
        let tc = Platform::GpuTensorCore.gemm(shape).time_ms;
        let sma2 = Platform::Sma2.gemm(shape).time_ms;
        let sma3 = Platform::Sma3.gemm(shape).time_ms;
        assert!(simd > tc, "TC beats SIMD");
        assert!(tc > sma2, "2-SMA beats TC");
        assert!(sma2 > sma3, "3-SMA beats 2-SMA");
    }

    #[test]
    #[should_panic(expected = "TpuSim")]
    fn tpu_gemm_panics_on_gpu_path() {
        let _ = Platform::TpuHost.gemm(GemmShape::square(64));
    }

    #[test]
    fn crf_on_gpu_matches_paper_order() {
        // Fig. 3: CRF ≈ 52 ms on the GPU. Our cost model should land in
        // the right decade (40-65 ms) from the byte counts alone.
        use sma_models::{Layer, LayerWork};
        let crf = Layer::Crf { pixels: 513 * 513, classes: 21, iterations: 10 };
        let LayerWork::Irregular { flops, bytes, parallel_fraction, memory_efficiency } =
            crf.work()
        else {
            panic!("crf is irregular")
        };
        let t = gpu_irregular_ms(
            &GpuConfig::volta(),
            flops,
            bytes,
            parallel_fraction,
            memory_efficiency,
            1.0,
        );
        assert!((40.0..65.0).contains(&t), "CRF on GPU {t:.1} ms");
    }

    #[test]
    fn simd_boost_speeds_irregular_work() {
        let gpu = GpuConfig::volta();
        let base = gpu_irregular_ms(&gpu, 10_000_000_000, 0, 0.9, 0.8, 1.0);
        let boosted = gpu_irregular_ms(&gpu, 10_000_000_000, 0, 0.9, 0.8, 3.0);
        assert!(boosted < base);
        // Amdahl: the serial 10% limits the gain.
        assert!(boosted > base / 3.0);
    }

    #[test]
    fn ledger_is_proportional() {
        let a = gpu_irregular_ledger(1000, 4096);
        let b = gpu_irregular_ledger(2000, 8192);
        assert_eq!(b.dram_bytes, 2 * a.dram_bytes);
        assert_eq!(b.alu_ops, 2 * a.alu_ops);
    }
}
