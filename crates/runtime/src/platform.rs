//! The platform keys of the evaluation.
//!
//! [`Platform`] is a thin, serialisable key naming the seven evaluated
//! architectures: the paper's five plus the two reconfigurable-systolic
//! designs the ROADMAP named (ArrayFlex, FlexSA). All execution
//! behaviour lives behind [`Platform::backend`], which returns the
//! shared [`Backend`] trait object for the key — the
//! executor, the experiment harness and the application studies never
//! match on the variant.

use crate::backend::{self, Backend, RuntimeError};
use serde::{Deserialize, Serialize};
use sma_core::model::GemmEstimate;
use sma_tensor::GemmShape;
use std::sync::Arc;

/// The seven platforms of the evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Platform {
    /// Baseline Volta SIMD lanes (FP32 CUTLASS-style GEMM).
    GpuSimd,
    /// Volta with its four TensorCores doing the GEMMs (spatial
    /// integration).
    GpuTensorCore,
    /// Two SMA units per SM (iso-FLOP with 4-TC).
    Sma2,
    /// Three SMA units per SM (iso-area; the temporal-integration win).
    Sma3,
    /// A TPU-v2 core plus host CPU over the cloud link.
    TpuHost,
    /// One configurable-transparent-pipelining systolic array per SM
    /// (ArrayFlex), selecting a pipeline depth per GEMM shape.
    ArrayFlex,
    /// One reconfigurable 16×16 ⇄ 4×8×8 tile per SM (FlexSA) with a
    /// structured-pruning-aware irregular path.
    FlexSa,
}

impl Platform {
    /// Every evaluated platform, in golden-file/report order — the
    /// single source of truth the sweep grids and the parity fixtures
    /// both iterate. The paper's original five keep their positions;
    /// the reconfigurable-systolic additions append after them.
    pub const ALL: [Platform; 7] = [
        Platform::GpuSimd,
        Platform::GpuTensorCore,
        Platform::Sma2,
        Platform::Sma3,
        Platform::TpuHost,
        Platform::ArrayFlex,
        Platform::FlexSa,
    ];

    /// Short label used in experiment tables (paper nomenclature).
    #[must_use]
    pub const fn label(self) -> &'static str {
        match self {
            Platform::GpuSimd => "SIMD",
            Platform::GpuTensorCore => "4-TC",
            Platform::Sma2 => "2-SMA",
            Platform::Sma3 => "3-SMA",
            Platform::TpuHost => "TPU",
            Platform::ArrayFlex => "ArrayFlex",
            Platform::FlexSa => "FlexSA",
        }
    }

    /// All GPU-family platforms in Fig. 8 order.
    #[must_use]
    pub const fn gpu_family() -> [Platform; 4] {
        [
            Platform::GpuSimd,
            Platform::GpuTensorCore,
            Platform::Sma2,
            Platform::Sma3,
        ]
    }

    /// The shared [`Backend`] instance for this key.
    ///
    /// Backends are constructed once, on first use, and cached for the
    /// lifetime of the process — repeated calls return the same
    /// instance (and therefore the same memoized GEMM cache).
    #[must_use]
    pub fn backend(self) -> Arc<dyn Backend> {
        backend::backend_for(self)
    }

    /// GEMM estimate on this platform's matrix engine, in GPU-clock
    /// units.
    ///
    /// # Errors
    ///
    /// [`RuntimeError::UnsupportedOnBackend`] for [`Platform::TpuHost`]:
    /// TPU estimates carry TPU-clock cycles and no GPU access ledger, so
    /// they flow through [`Platform::backend`] (whose
    /// [`Backend::gemm`] documents the unit difference) rather than
    /// through this GPU-units accessor.
    pub fn gemm(&self, shape: GemmShape) -> Result<GemmEstimate, RuntimeError> {
        match self {
            Platform::TpuHost => Err(RuntimeError::UnsupportedOnBackend {
                backend: self.label(),
                operation: "GPU-clock GEMM estimates (use Platform::backend())",
            }),
            _ => self.backend().gemm(shape),
        }
    }

    /// Multiplier on SIMD throughput available for irregular work
    /// (delegates to the backend — see
    /// [`Backend::simd_mode_boost`]).
    #[must_use]
    pub fn simd_mode_boost(self) -> f64 {
        self.backend().simd_mode_boost()
    }
}

impl std::fmt::Display for Platform {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    // Exact float equality in these tests asserts bit-reproducibility
    // of exactly-representable values; an epsilon would weaken them.
    #![allow(clippy::float_cmp)]

    use super::*;

    #[test]
    fn labels_and_family() {
        assert_eq!(Platform::Sma3.label(), "3-SMA");
        assert_eq!(Platform::gpu_family().len(), 4);
        assert_eq!(Platform::GpuSimd.to_string(), "SIMD");
    }

    #[test]
    fn gemm_dispatches_per_platform() {
        let shape = GemmShape::square(1024);
        let simd = Platform::GpuSimd.gemm(shape).unwrap().time_ms;
        let tc = Platform::GpuTensorCore.gemm(shape).unwrap().time_ms;
        let sma2 = Platform::Sma2.gemm(shape).unwrap().time_ms;
        let sma3 = Platform::Sma3.gemm(shape).unwrap().time_ms;
        assert!(simd > tc, "TC beats SIMD");
        assert!(tc > sma2, "2-SMA beats TC");
        assert!(sma2 > sma3, "3-SMA beats 2-SMA");
    }

    #[test]
    fn tpu_gemm_is_a_typed_error_not_a_panic() {
        let err = Platform::TpuHost.gemm(GemmShape::square(64)).unwrap_err();
        assert!(matches!(
            err,
            RuntimeError::UnsupportedOnBackend { backend: "TPU", .. }
        ));
        // …while the backend route serves the TPU estimate directly.
        assert!(
            Platform::TpuHost
                .backend()
                .gemm(GemmShape::square(64))
                .unwrap()
                .time_ms
                > 0.0
        );
    }

    #[test]
    fn simd_boost_comes_from_the_backend() {
        assert_eq!(Platform::GpuSimd.simd_mode_boost(), 1.0);
        assert_eq!(Platform::GpuTensorCore.simd_mode_boost(), 1.0);
        assert_eq!(Platform::Sma2.simd_mode_boost(), 2.0);
        assert_eq!(Platform::Sma3.simd_mode_boost(), 3.0);
        assert_eq!(Platform::TpuHost.simd_mode_boost(), 0.0);
        // The reconfigurable arrays reconfigure within the systolic
        // domain, not into SIMD lanes.
        assert_eq!(Platform::ArrayFlex.simd_mode_boost(), 1.0);
        assert_eq!(Platform::FlexSa.simd_mode_boost(), 1.0);
    }

    #[test]
    fn reconfigurable_platforms_serve_gpu_clock_estimates() {
        let shape = GemmShape::square(1024);
        for p in [Platform::ArrayFlex, Platform::FlexSa] {
            let est = p.gemm(shape).unwrap();
            assert!(est.time_ms > 0.0 && est.cycles > 0, "{p}");
        }
        assert_eq!(Platform::ALL.len(), 7);
    }
}
