//! Compile-once/replay-many execution plans.
//!
//! [`Executor::try_run`](crate::Executor::try_run) re-derives every
//! layer's work, re-stacks the batch and re-queries the backend's GEMM
//! cache on *every* invocation. The expensive part — resolving
//! [`LayerWork`](sma_models::LayerWork) and estimating GEMM latency — is
//! shape-determined and identical across invocations, so a serving loop
//! should pay it once. [`Executor::plan`](crate::Executor::plan) does
//! exactly that: it walks the network once, applies the batch stacking,
//! pre-warms the backend's GEMM estimates, and freezes each layer's
//! `(ms, path, mem, sm_cycles)` contribution into a [`NetworkPlan`].
//! [`NetworkPlan::run`] is then pure aggregation over the frozen steps:
//! no locks, no `layer.work()` recomputation, no backend dispatch, and a
//! single exactly-sized allocation for the per-layer records.
//!
//! Replays are bit-identical to the step-by-step executor — both paths
//! fold the same [`PlannedStep`]s in the same order (pinned by
//! `tests/golden_profiles.txt` and the plan-parity suite).
//!
//! Two further layers serve sweeps that compile *thousands* of plans:
//!
//! * [`PlanFamily`] — incremental compilation. A family resolves the
//!   batch-*independent* work (layer lowering, irregular estimates, CRF
//!   hand-off) exactly once; [`PlanFamily::plan`] then derives a
//!   sibling plan for any batch size by rewriting only the
//!   batch-dependent GEMM steps. Derived plans are bit-identical to
//!   from-scratch [`Executor::plan`](crate::Executor::plan) because the
//!   per-step arithmetic is literally the same code
//!   ([`TemplateStep::instantiate`] is the executor's GEMM arm).
//! * [`PlanArena`] — a bump-allocated step table. Thousands of plans
//!   share one contiguous `Vec<PlannedStep>` instead of a `Vec` each;
//!   [`PlanArena::replay`] takes `&self`, so replay stays lock-free
//!   pure aggregation and scales across worker threads.
//!
//! ```
//! use sma_models::zoo;
//! use sma_runtime::{Executor, Platform};
//!
//! let exec = Executor::kernel_study(Platform::Sma3);
//! let net = zoo::vgg_a();
//! let plan = exec.plan(&net); // resolves work + warms the GEMM cache
//! let replay = plan.run(); // lock-free aggregation
//! let stepwise = exec.run(&net);
//! assert_eq!(replay.total_ms.to_bits(), stepwise.total_ms.to_bits());
//! ```

use crate::backend::{Backend, ExecPath, RuntimeError};
use crate::executor::{LayerProfile, NetworkProfile};
use crate::platform::Platform;
use serde::{Deserialize, Serialize};
use sma_mem::MemStats;
use sma_tensor::GemmShape;
use std::sync::Arc;

/// One frozen contribution of a [`NetworkPlan`].
///
/// Steps carry everything a replay needs; folding them into a
/// [`NetworkProfile`] performs the same additions in the same order as
/// [`Executor::try_run`](crate::Executor::try_run), so replays are
/// bit-identical to step-by-step execution.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum PlannedStep {
    /// A post-processing stage excluded from the profile whose host
    /// hand-off still bills (offload backends cannot finish without the
    /// host even when the CRF compute is reported separately).
    CrfHandoff {
        /// Milliseconds of host transfer.
        transfer_ms: f64,
    },
    /// A profiled layer.
    Layer {
        /// Index in the network's layer table.
        index: usize,
        /// Milliseconds on the platform (framework glue included).
        ms: f64,
        /// Which execution path runs it.
        path: ExecPath,
        /// Frozen access ledger contribution.
        mem: MemStats,
        /// Frozen occupied SM-cycles contribution.
        sm_cycles: u64,
        /// Milliseconds of host transfer contained in `ms`.
        transfer_ms: f64,
    },
}

impl PlannedStep {
    /// Folds this step into a profile.
    ///
    /// The accumulation order mirrors the executor's per-layer loop
    /// exactly — both paths call this — which is what keeps plans and
    /// step-by-step runs bit-identical.
    pub(crate) fn apply(&self, profile: &mut NetworkProfile) {
        match *self {
            PlannedStep::CrfHandoff { transfer_ms } => {
                profile.transfer_ms += transfer_ms;
                profile.total_ms += transfer_ms;
                profile.irregular_ms += transfer_ms;
            }
            PlannedStep::Layer {
                index,
                ms,
                path,
                mem,
                sm_cycles,
                transfer_ms,
            } => {
                profile.mem += mem;
                profile.sm_cycles += sm_cycles;
                profile.transfer_ms += transfer_ms;
                match path {
                    ExecPath::MatrixEngine => profile.gemm_ms += ms,
                    ExecPath::SimdMode | ExecPath::TpuLowered | ExecPath::HostCpu => {
                        profile.irregular_ms += ms;
                    }
                }
                profile.total_ms += ms;
                profile.layers.push(LayerProfile { index, ms, path });
            }
        }
    }
}

/// A compiled execution of one network on one executor configuration.
///
/// Built by [`Executor::plan`](crate::Executor::plan) /
/// [`Executor::try_plan`](crate::Executor::try_plan). Construction
/// resolves every layer once (dispatching through the backend, which
/// pre-warms its GEMM cache); [`NetworkPlan::run`] replays the frozen
/// result without touching the backend at all, so replays take no locks
/// and record zero cache misses — the shape a high-traffic serving loop
/// or a parallel sweep wants.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NetworkPlan {
    platform: Platform,
    network: Arc<str>,
    steps: Vec<PlannedStep>,
    profiled_layers: usize,
}

impl NetworkPlan {
    pub(crate) fn new(platform: Platform, network: Arc<str>, steps: Vec<PlannedStep>) -> Self {
        let profiled_layers = steps
            .iter()
            .filter(|s| matches!(s, PlannedStep::Layer { .. }))
            .count();
        NetworkPlan {
            platform,
            network,
            steps,
            profiled_layers,
        }
    }

    /// Replays the plan into a fresh profile.
    ///
    /// Pure aggregation over the frozen steps: no backend dispatch, no
    /// locking, no `layer.work()` recomputation, and the per-layer
    /// vector is allocated once at its exact final size.
    #[must_use]
    pub fn run(&self) -> NetworkProfile {
        fold_steps(
            self.platform,
            &self.network,
            &self.steps,
            self.profiled_layers,
        )
    }

    /// The platform key the plan was compiled for.
    #[must_use]
    pub const fn platform(&self) -> Platform {
        self.platform
    }

    /// The network name the plan was compiled from.
    #[must_use]
    pub fn network(&self) -> &str {
        &self.network
    }

    /// The frozen steps, in execution order.
    #[must_use]
    pub fn steps(&self) -> &[PlannedStep] {
        &self.steps
    }

    /// Number of profiled layers a replay will record.
    #[must_use]
    pub const fn layer_count(&self) -> usize {
        self.profiled_layers
    }

    /// Total milliseconds of one replay (without building the profile).
    #[must_use]
    pub fn total_ms(&self) -> f64 {
        self.steps
            .iter()
            .map(|s| match *s {
                PlannedStep::CrfHandoff { transfer_ms } => transfer_ms,
                PlannedStep::Layer { ms, .. } => ms,
            })
            .sum()
    }

    /// Estimated resident size of the compiled plan in bytes: the plan
    /// header, the frozen step table, and the shared network-name
    /// buffer. A pure function of the step count and name length — the
    /// batch dimension scales `m` inside each step, not the step count,
    /// so plans of the same network cost the same bytes at every batch
    /// size. The serving layer's capacity-bounded plan cache charges
    /// and evicts by this estimate.
    #[must_use]
    pub fn mem_bytes(&self) -> u64 {
        (std::mem::size_of::<Self>()
            + self.steps.len() * std::mem::size_of::<PlannedStep>()
            + self.network.len()) as u64
    }
}

/// The one step-fold shared by every replay path.
///
/// [`NetworkPlan::run`] and [`PlanArena::replay`] both call this, so
/// heap-backed and arena-backed replays are bit-identical by
/// construction: same [`PlannedStep::apply`] calls, same order, same
/// pre-sized per-layer vector.
fn fold_steps(
    platform: Platform,
    network: &Arc<str>,
    steps: &[PlannedStep],
    profiled_layers: usize,
) -> NetworkProfile {
    let mut profile = NetworkProfile::empty(platform, Arc::clone(network), profiled_layers);
    for step in steps {
        step.apply(&mut profile);
    }
    profile
}

/// One template step of a [`PlanFamily`]: either a frozen
/// batch-independent [`PlannedStep`], or a symbolic GEMM awaiting its
/// batch dimension.
///
/// [`TemplateStep::instantiate`] IS the executor's GEMM arm — both
/// [`Executor::try_run`](crate::Executor::try_run) and
/// [`PlanFamily::plan`] resolve GEMM layers through it, which is what
/// pins family-derived plans bit-identical to from-scratch compilation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TemplateStep {
    /// Batch-independent work, frozen verbatim at family-compile time
    /// (irregular layers, CRF hand-off transfers).
    Fixed(PlannedStep),
    /// A batch-dependent GEMM layer: the *unstacked* (batch-1) shape
    /// plus the framework glue the backend bills per layer. Each batch
    /// size rewrites `m` and re-queries the backend's memoised
    /// estimate.
    Gemm {
        /// Index in the network's layer table.
        index: usize,
        /// The batch-1 GEMM shape (im2col-lowered, unstacked).
        shape: GemmShape,
        /// Framework glue in ms (0.0 when the backend is glue-free).
        glue: f64,
    },
}

impl TemplateStep {
    /// Resolves the template at a batch size, dispatching GEMM steps
    /// through the backend. The arithmetic (`shape.m *= batch`, then
    /// `est.time_ms + glue`) is the executor's GEMM arm verbatim.
    ///
    /// # Errors
    ///
    /// Propagates [`RuntimeError`] from [`Backend::gemm`].
    pub fn instantiate(
        &self,
        backend: &dyn Backend,
        batch: usize,
    ) -> Result<PlannedStep, RuntimeError> {
        match *self {
            TemplateStep::Fixed(step) => Ok(step),
            TemplateStep::Gemm {
                index,
                mut shape,
                glue,
            } => {
                // im2col GEMMs stack along `m`; callers clamp batch >= 1.
                shape.m *= batch;
                let est = backend.gemm(shape)?;
                Ok(PlannedStep::Layer {
                    index,
                    ms: est.time_ms + glue,
                    path: ExecPath::MatrixEngine,
                    mem: est.mem,
                    sm_cycles: est.sm_cycles,
                    transfer_ms: 0.0,
                })
            }
        }
    }
}

/// Incrementally-compiled plan family: one network on one executor
/// configuration, batch size left symbolic.
///
/// Built by [`Executor::plan_family`](crate::Executor::plan_family).
/// Construction resolves everything batch-*independent* exactly once —
/// layer lowering, irregular estimates, the CRF hand-off decision —
/// and records each GEMM layer as an unstacked [`TemplateStep::Gemm`].
/// [`PlanFamily::plan`] then derives the plan for any batch size by
/// rewriting only those GEMM steps, so compiling `B` batch variants
/// costs one full compile plus `B` sets of memoised GEMM lookups
/// instead of `B` full compiles.
///
/// Derived plans are pinned bit-identical to from-scratch
/// [`Executor::plan`](crate::Executor::plan) (the plan-parity suite and
/// `tests/plan_family.rs` enforce this): both paths build their steps
/// with [`TemplateStep::instantiate`].
#[derive(Debug, Clone)]
pub struct PlanFamily {
    platform: Platform,
    backend: Arc<dyn Backend>,
    network: Arc<str>,
    template: Vec<TemplateStep>,
}

impl PlanFamily {
    pub(crate) fn new(
        platform: Platform,
        backend: Arc<dyn Backend>,
        network: Arc<str>,
        template: Vec<TemplateStep>,
    ) -> Self {
        PlanFamily {
            platform,
            backend,
            network,
            template,
        }
    }

    /// The platform key the family was compiled for.
    #[must_use]
    pub const fn platform(&self) -> Platform {
        self.platform
    }

    /// The network name the family was compiled from.
    #[must_use]
    pub fn network(&self) -> &str {
        &self.network
    }

    /// The frozen template steps, in execution order.
    #[must_use]
    pub fn template(&self) -> &[TemplateStep] {
        &self.template
    }

    /// Number of batch-dependent (GEMM) steps a batch derivation
    /// rewrites; the remaining steps are reused frozen.
    #[must_use]
    pub fn gemm_steps(&self) -> usize {
        self.template
            .iter()
            .filter(|t| matches!(t, TemplateStep::Gemm { .. }))
            .count()
    }

    /// The batch-stacked GEMM shapes this family dispatches at a batch
    /// size, in execution order. This is the family's matrix workload
    /// as a value — the DSE layer feeds it to
    /// [`sma_tensor::GemmShapeBatch`] for batched statistics kernels.
    #[must_use]
    pub fn gemm_shapes(&self, batch: usize) -> Vec<GemmShape> {
        let batch = batch.max(1);
        self.template
            .iter()
            .filter_map(|t| match *t {
                TemplateStep::Gemm { mut shape, .. } => {
                    shape.m *= batch;
                    Some(shape)
                }
                TemplateStep::Fixed(_) => None,
            })
            .collect()
    }

    /// Derives the [`NetworkPlan`] for a batch size (clamped to >= 1),
    /// rewriting only the batch-dependent GEMM steps.
    ///
    /// # Errors
    ///
    /// Propagates [`RuntimeError`] from the backend (e.g. a GEMM-only
    /// engine refusing a shape).
    pub fn try_plan(&self, batch: usize) -> Result<NetworkPlan, RuntimeError> {
        let batch = batch.max(1);
        let mut steps = Vec::with_capacity(self.template.len());
        for template in &self.template {
            steps.push(template.instantiate(self.backend.as_ref(), batch)?);
        }
        Ok(NetworkPlan::new(
            self.platform,
            Arc::clone(&self.network),
            steps,
        ))
    }

    /// Derives the plan for a batch size.
    ///
    /// # Panics
    ///
    /// Panics if the backend rejects a shape; use
    /// [`PlanFamily::try_plan`] to handle that as a value.
    #[must_use]
    pub fn plan(&self, batch: usize) -> NetworkPlan {
        self.try_plan(batch)
            // sma-lint: allow(no-panic) — documented panic; try_plan is
            // the fallible form and the message routes callers to it.
            .expect("backend rejected a shape; use try_plan for fallible derivation")
    }

    /// Derives the plan for a batch size directly into an arena,
    /// returning the handle. Equivalent to `arena.intern(&family
    /// .try_plan(batch)?)` without the intermediate heap plan.
    ///
    /// # Errors
    ///
    /// Propagates [`RuntimeError`] from the backend; on error the arena
    /// is left exactly as it was (no partial plan is retained).
    pub fn try_plan_into(
        &self,
        batch: usize,
        arena: &mut PlanArena,
    ) -> Result<ArenaPlan, RuntimeError> {
        let batch = batch.max(1);
        let start = arena.steps.len();
        for template in &self.template {
            match template.instantiate(self.backend.as_ref(), batch) {
                Ok(step) => arena.steps.push(step),
                Err(err) => {
                    arena.steps.truncate(start);
                    return Err(err);
                }
            }
        }
        Ok(arena.seal(self.platform, Arc::clone(&self.network), start))
    }
}

/// A bump-allocated step table shared by many compiled plans.
///
/// Interning a plan appends its frozen steps to one contiguous
/// `Vec<PlannedStep>` and returns a lightweight [`ArenaPlan`] handle
/// (platform, name, offset, length). A 5,000-point sweep thus holds
/// *one* allocation region for every step table instead of one `Vec`
/// per plan, and replay walks a dense slice — cache-friendly and free
/// of per-plan allocator traffic.
///
/// The build phase takes `&mut self`; replay takes `&self` only, so
/// worker threads replay concurrently with no locks
/// ([`PlanArena::replay`] is the same pure fold as
/// [`NetworkPlan::run`], hence bit-identical to it).
#[derive(Debug, Clone, Default)]
pub struct PlanArena {
    steps: Vec<PlannedStep>,
}

impl PlanArena {
    /// An empty arena.
    #[must_use]
    pub fn new() -> Self {
        PlanArena::default()
    }

    /// An empty arena with room for `steps` frozen steps.
    #[must_use]
    pub fn with_capacity(steps: usize) -> Self {
        PlanArena {
            steps: Vec::with_capacity(steps),
        }
    }

    /// Interns a compiled plan: copies its steps into the shared region
    /// and returns the replay handle.
    pub fn intern(&mut self, plan: &NetworkPlan) -> ArenaPlan {
        let start = self.steps.len();
        self.steps.extend_from_slice(plan.steps());
        self.seal(plan.platform, Arc::clone(&plan.network), start)
    }

    /// Closes the half-open step range `start..len()` into a handle.
    fn seal(&self, platform: Platform, network: Arc<str>, start: usize) -> ArenaPlan {
        let slice = &self.steps[start..];
        ArenaPlan {
            platform,
            network,
            start,
            len: slice.len(),
            profiled_layers: slice
                .iter()
                .filter(|s| matches!(s, PlannedStep::Layer { .. }))
                .count(),
        }
    }

    /// The frozen steps of one interned plan.
    ///
    /// # Panics
    ///
    /// Panics if `plan` was produced by a different (or shorter) arena;
    /// handles are only valid for the arena that produced them.
    #[must_use]
    pub fn steps(&self, plan: &ArenaPlan) -> &[PlannedStep] {
        &self.steps[plan.start..plan.start + plan.len]
    }

    /// Replays one interned plan into a fresh profile — the same
    /// lock-free pure aggregation as [`NetworkPlan::run`], and
    /// bit-identical to it (both call the one shared step fold).
    ///
    /// # Panics
    ///
    /// Panics if `plan` came from a different arena.
    #[must_use]
    pub fn replay(&self, plan: &ArenaPlan) -> NetworkProfile {
        fold_steps(
            plan.platform,
            &plan.network,
            self.steps(plan),
            plan.profiled_layers,
        )
    }

    /// Total milliseconds of one replay without building the profile.
    ///
    /// # Panics
    ///
    /// Panics if `plan` came from a different arena.
    #[must_use]
    pub fn total_ms(&self, plan: &ArenaPlan) -> f64 {
        self.steps(plan)
            .iter()
            .map(|s| match *s {
                PlannedStep::CrfHandoff { transfer_ms } => transfer_ms,
                PlannedStep::Layer { ms, .. } => ms,
            })
            .sum()
    }

    /// Total frozen steps resident across all interned plans.
    #[must_use]
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// Whether the arena holds no steps.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// Resident bytes of the shared step region (capacity, not just
    /// occupancy — this is what the allocator actually holds).
    #[must_use]
    pub fn mem_bytes(&self) -> u64 {
        (std::mem::size_of::<Self>() + self.steps.capacity() * std::mem::size_of::<PlannedStep>())
            as u64
    }
}

/// Replay handle for one plan interned in a [`PlanArena`]: platform
/// key, shared network name, and the step range. ~64 bytes regardless
/// of network depth — the steps live in the arena.
#[derive(Debug, Clone)]
pub struct ArenaPlan {
    platform: Platform,
    network: Arc<str>,
    start: usize,
    len: usize,
    profiled_layers: usize,
}

impl ArenaPlan {
    /// The platform key the plan was compiled for.
    #[must_use]
    pub const fn platform(&self) -> Platform {
        self.platform
    }

    /// The network name the plan was compiled from.
    #[must_use]
    pub fn network(&self) -> &str {
        &self.network
    }

    /// Number of frozen steps in the arena region.
    #[must_use]
    pub const fn step_count(&self) -> usize {
        self.len
    }

    /// Number of profiled layers a replay will record.
    #[must_use]
    pub const fn layer_count(&self) -> usize {
        self.profiled_layers
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Executor;
    use sma_models::zoo;

    #[test]
    fn replay_matches_stepwise_run_bitwise() {
        for platform in [Platform::GpuSimd, Platform::Sma3, Platform::TpuHost] {
            let exec = Executor::new(platform);
            let net = zoo::mask_rcnn();
            let plan = exec.plan(&net);
            let a = plan.run();
            let b = exec.run(&net);
            assert_eq!(a.total_ms.to_bits(), b.total_ms.to_bits());
            assert_eq!(a.gemm_ms.to_bits(), b.gemm_ms.to_bits());
            assert_eq!(a.irregular_ms.to_bits(), b.irregular_ms.to_bits());
            assert_eq!(a.transfer_ms.to_bits(), b.transfer_ms.to_bits());
            assert_eq!(a.sm_cycles, b.sm_cycles);
            assert_eq!(a.mem, b.mem);
            assert_eq!(a.layers.len(), b.layers.len());
        }
    }

    #[test]
    fn plan_metadata_is_frozen() {
        let exec = Executor::builder(Platform::Sma2).batch(16).build();
        let net = zoo::alexnet();
        let plan = exec.try_plan(&net).unwrap();
        assert_eq!(plan.platform(), Platform::Sma2);
        assert_eq!(plan.network(), "AlexNet");
        assert_eq!(plan.layer_count(), net.layers().len());
        assert_eq!(plan.layer_count(), plan.run().layers.len());
        assert!(plan.total_ms() > 0.0);
        // total_ms() agrees with a replay up to summation order.
        assert!((plan.total_ms() - plan.run().total_ms).abs() < 1e-9);
    }

    #[test]
    fn skipped_crf_handoff_survives_planning() {
        // DeepLab without post-processing: on-die backends drop the CRF
        // entirely; the TPU still pays the hand-off transfer.
        let net = zoo::deeplab();
        let on_die = Executor::builder(Platform::Sma3)
            .postprocessing(false)
            .build()
            .plan(&net);
        assert!(on_die
            .steps()
            .iter()
            .all(|s| matches!(s, PlannedStep::Layer { .. })));
        let tpu = Executor::builder(Platform::TpuHost)
            .postprocessing(false)
            .build()
            .plan(&net);
        assert!(tpu
            .steps()
            .iter()
            .any(|s| matches!(s, PlannedStep::CrfHandoff { .. })));
        assert!(tpu.run().transfer_ms > 0.0);
    }

    #[test]
    fn mem_bytes_tracks_steps_not_batch() {
        let net = zoo::vgg_a();
        let b1 = Executor::builder(Platform::Sma3)
            .batch(1)
            .build()
            .plan(&net);
        let b16 = Executor::builder(Platform::Sma3)
            .batch(16)
            .build()
            .plan(&net);
        assert!(b1.mem_bytes() > 0);
        // Batch stacking scales shapes inside steps, not the step
        // count, so residency is batch-invariant.
        assert_eq!(b1.mem_bytes(), b16.mem_bytes());
        // More layers means more resident bytes.
        let small = Executor::new(Platform::Sma3).plan(&zoo::alexnet());
        let large = Executor::new(Platform::Sma3).plan(&zoo::googlenet());
        assert!(large.mem_bytes() > small.mem_bytes());
    }

    fn assert_profiles_bitwise(a: &NetworkProfile, b: &NetworkProfile) {
        assert_eq!(a.total_ms.to_bits(), b.total_ms.to_bits());
        assert_eq!(a.gemm_ms.to_bits(), b.gemm_ms.to_bits());
        assert_eq!(a.irregular_ms.to_bits(), b.irregular_ms.to_bits());
        assert_eq!(a.transfer_ms.to_bits(), b.transfer_ms.to_bits());
        assert_eq!(a.sm_cycles, b.sm_cycles);
        assert_eq!(a.mem, b.mem);
        assert_eq!(a.layers.len(), b.layers.len());
        for (x, y) in a.layers.iter().zip(&b.layers) {
            assert_eq!(x.index, y.index);
            assert_eq!(x.ms.to_bits(), y.ms.to_bits());
            assert_eq!(x.path, y.path);
        }
    }

    #[test]
    fn family_derived_plans_match_from_scratch_bitwise() {
        for platform in [Platform::GpuSimd, Platform::Sma3, Platform::TpuHost] {
            let base = Executor::new(platform);
            let net = zoo::mask_rcnn();
            let family = base.plan_family(&net);
            for batch in [1usize, 4, 16, 64] {
                let derived = family.plan(batch);
                let scratch = base.with_batch(batch).plan(&net);
                assert_eq!(derived.steps(), scratch.steps(), "{platform:?} b{batch}");
                assert_profiles_bitwise(&derived.run(), &scratch.run());
            }
        }
    }

    #[test]
    fn family_rewrites_only_gemm_steps() {
        let net = zoo::mask_rcnn();
        let family = Executor::new(Platform::Sma3).plan_family(&net);
        assert!(family.gemm_steps() > 0);
        assert!(family.gemm_steps() < family.template().len());
        let b1 = family.plan(1);
        let b64 = family.plan(64);
        for (t, (a, b)) in family
            .template()
            .iter()
            .zip(b1.steps().iter().zip(b64.steps()))
        {
            match t {
                TemplateStep::Fixed(_) => assert_eq!(a, b, "fixed step drifted across batches"),
                TemplateStep::Gemm { .. } => assert_ne!(a, b, "gemm step ignored the batch"),
            }
        }
        // The family's shape view stacks along m only.
        let s1 = family.gemm_shapes(1);
        let s16 = family.gemm_shapes(16);
        assert_eq!(s1.len(), family.gemm_steps());
        for (a, b) in s1.iter().zip(&s16) {
            assert_eq!(a.m * 16, b.m);
            assert_eq!(a.n, b.n);
            assert_eq!(a.k, b.k);
        }
    }

    #[test]
    fn family_batch_is_clamped_like_the_builder() {
        let net = zoo::alexnet();
        let family = Executor::new(Platform::Sma2).plan_family(&net);
        let a = family.plan(0);
        let b = family.plan(1);
        assert_eq!(a.steps(), b.steps());
    }

    #[test]
    fn arena_replay_matches_heap_replay_bitwise() {
        let mut arena = PlanArena::new();
        let mut pairs = Vec::new();
        for platform in [Platform::GpuSimd, Platform::Sma3, Platform::TpuHost] {
            for net in [zoo::alexnet(), zoo::deeplab(), zoo::mask_rcnn()] {
                let plan = Executor::new(platform).plan(&net);
                let handle = arena.intern(&plan);
                pairs.push((plan, handle));
            }
        }
        assert_eq!(
            arena.len(),
            pairs.iter().map(|(p, _)| p.steps().len()).sum::<usize>()
        );
        for (plan, handle) in &pairs {
            assert_eq!(handle.platform(), plan.platform());
            assert_eq!(handle.network(), plan.network());
            assert_eq!(handle.step_count(), plan.steps().len());
            assert_eq!(handle.layer_count(), plan.layer_count());
            assert_eq!(arena.steps(handle), plan.steps());
            assert_eq!(arena.total_ms(handle).to_bits(), plan.total_ms().to_bits());
            assert_profiles_bitwise(&arena.replay(handle), &plan.run());
        }
    }

    #[test]
    fn family_plans_directly_into_arena() {
        let net = zoo::googlenet();
        let family = Executor::kernel_study(Platform::Sma3).plan_family(&net);
        let mut arena = PlanArena::with_capacity(net.layers().len() * 4);
        for batch in [1usize, 4, 16, 64] {
            let handle = family.try_plan_into(batch, &mut arena).unwrap();
            let heap = family.plan(batch);
            assert_eq!(arena.steps(&handle), heap.steps());
            assert_profiles_bitwise(&arena.replay(&handle), &heap.run());
        }
        assert!(arena.mem_bytes() > 0);
        assert!(!arena.is_empty());
    }

    #[test]
    fn replays_are_idempotent() {
        let plan = Executor::kernel_study(Platform::GpuTensorCore).plan(&zoo::googlenet());
        let first = plan.run();
        for _ in 0..3 {
            let again = plan.run();
            assert_eq!(first.total_ms.to_bits(), again.total_ms.to_bits());
            assert_eq!(first.layers.len(), again.layers.len());
        }
    }
}
