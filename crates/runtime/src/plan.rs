//! Compile-once/replay-many execution plans.
//!
//! [`Executor::try_run`](crate::Executor::try_run) re-derives every
//! layer's work, re-stacks the batch and re-queries the backend's GEMM
//! cache on *every* invocation. The expensive part — resolving
//! [`LayerWork`](sma_models::LayerWork) and estimating GEMM latency — is
//! shape-determined and identical across invocations, so a serving loop
//! should pay it once. [`Executor::plan`](crate::Executor::plan) does
//! exactly that: it walks the network once, applies the batch stacking,
//! pre-warms the backend's GEMM estimates, and freezes each layer's
//! `(ms, path, mem, sm_cycles)` contribution into a [`NetworkPlan`].
//! [`NetworkPlan::run`] is then pure aggregation over the frozen steps:
//! no locks, no `layer.work()` recomputation, no backend dispatch, and a
//! single exactly-sized allocation for the per-layer records.
//!
//! Replays are bit-identical to the step-by-step executor — both paths
//! fold the same [`PlannedStep`]s in the same order (pinned by
//! `tests/golden_profiles.txt` and the plan-parity suite).
//!
//! ```
//! use sma_models::zoo;
//! use sma_runtime::{Executor, Platform};
//!
//! let exec = Executor::kernel_study(Platform::Sma3);
//! let net = zoo::vgg_a();
//! let plan = exec.plan(&net); // resolves work + warms the GEMM cache
//! let replay = plan.run(); // lock-free aggregation
//! let stepwise = exec.run(&net);
//! assert_eq!(replay.total_ms.to_bits(), stepwise.total_ms.to_bits());
//! ```

use crate::backend::ExecPath;
use crate::executor::{LayerProfile, NetworkProfile};
use crate::platform::Platform;
use serde::{Deserialize, Serialize};
use sma_mem::MemStats;
use std::sync::Arc;

/// One frozen contribution of a [`NetworkPlan`].
///
/// Steps carry everything a replay needs; folding them into a
/// [`NetworkProfile`] performs the same additions in the same order as
/// [`Executor::try_run`](crate::Executor::try_run), so replays are
/// bit-identical to step-by-step execution.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum PlannedStep {
    /// A post-processing stage excluded from the profile whose host
    /// hand-off still bills (offload backends cannot finish without the
    /// host even when the CRF compute is reported separately).
    CrfHandoff {
        /// Milliseconds of host transfer.
        transfer_ms: f64,
    },
    /// A profiled layer.
    Layer {
        /// Index in the network's layer table.
        index: usize,
        /// Milliseconds on the platform (framework glue included).
        ms: f64,
        /// Which execution path runs it.
        path: ExecPath,
        /// Frozen access ledger contribution.
        mem: MemStats,
        /// Frozen occupied SM-cycles contribution.
        sm_cycles: u64,
        /// Milliseconds of host transfer contained in `ms`.
        transfer_ms: f64,
    },
}

impl PlannedStep {
    /// Folds this step into a profile.
    ///
    /// The accumulation order mirrors the executor's per-layer loop
    /// exactly — both paths call this — which is what keeps plans and
    /// step-by-step runs bit-identical.
    pub(crate) fn apply(&self, profile: &mut NetworkProfile) {
        match *self {
            PlannedStep::CrfHandoff { transfer_ms } => {
                profile.transfer_ms += transfer_ms;
                profile.total_ms += transfer_ms;
                profile.irregular_ms += transfer_ms;
            }
            PlannedStep::Layer {
                index,
                ms,
                path,
                mem,
                sm_cycles,
                transfer_ms,
            } => {
                profile.mem += mem;
                profile.sm_cycles += sm_cycles;
                profile.transfer_ms += transfer_ms;
                match path {
                    ExecPath::MatrixEngine => profile.gemm_ms += ms,
                    ExecPath::SimdMode | ExecPath::TpuLowered | ExecPath::HostCpu => {
                        profile.irregular_ms += ms;
                    }
                }
                profile.total_ms += ms;
                profile.layers.push(LayerProfile { index, ms, path });
            }
        }
    }
}

/// A compiled execution of one network on one executor configuration.
///
/// Built by [`Executor::plan`](crate::Executor::plan) /
/// [`Executor::try_plan`](crate::Executor::try_plan). Construction
/// resolves every layer once (dispatching through the backend, which
/// pre-warms its GEMM cache); [`NetworkPlan::run`] replays the frozen
/// result without touching the backend at all, so replays take no locks
/// and record zero cache misses — the shape a high-traffic serving loop
/// or a parallel sweep wants.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NetworkPlan {
    platform: Platform,
    network: Arc<str>,
    steps: Vec<PlannedStep>,
    profiled_layers: usize,
}

impl NetworkPlan {
    pub(crate) fn new(platform: Platform, network: Arc<str>, steps: Vec<PlannedStep>) -> Self {
        let profiled_layers = steps
            .iter()
            .filter(|s| matches!(s, PlannedStep::Layer { .. }))
            .count();
        NetworkPlan {
            platform,
            network,
            steps,
            profiled_layers,
        }
    }

    /// Replays the plan into a fresh profile.
    ///
    /// Pure aggregation over the frozen steps: no backend dispatch, no
    /// locking, no `layer.work()` recomputation, and the per-layer
    /// vector is allocated once at its exact final size.
    #[must_use]
    pub fn run(&self) -> NetworkProfile {
        let mut profile = NetworkProfile::empty(
            self.platform,
            Arc::clone(&self.network),
            self.profiled_layers,
        );
        for step in &self.steps {
            step.apply(&mut profile);
        }
        profile
    }

    /// The platform key the plan was compiled for.
    #[must_use]
    pub const fn platform(&self) -> Platform {
        self.platform
    }

    /// The network name the plan was compiled from.
    #[must_use]
    pub fn network(&self) -> &str {
        &self.network
    }

    /// The frozen steps, in execution order.
    #[must_use]
    pub fn steps(&self) -> &[PlannedStep] {
        &self.steps
    }

    /// Number of profiled layers a replay will record.
    #[must_use]
    pub const fn layer_count(&self) -> usize {
        self.profiled_layers
    }

    /// Total milliseconds of one replay (without building the profile).
    #[must_use]
    pub fn total_ms(&self) -> f64 {
        self.steps
            .iter()
            .map(|s| match *s {
                PlannedStep::CrfHandoff { transfer_ms } => transfer_ms,
                PlannedStep::Layer { ms, .. } => ms,
            })
            .sum()
    }

    /// Estimated resident size of the compiled plan in bytes: the plan
    /// header, the frozen step table, and the shared network-name
    /// buffer. A pure function of the step count and name length — the
    /// batch dimension scales `m` inside each step, not the step count,
    /// so plans of the same network cost the same bytes at every batch
    /// size. The serving layer's capacity-bounded plan cache charges
    /// and evicts by this estimate.
    #[must_use]
    pub fn mem_bytes(&self) -> u64 {
        (std::mem::size_of::<Self>()
            + self.steps.len() * std::mem::size_of::<PlannedStep>()
            + self.network.len()) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Executor;
    use sma_models::zoo;

    #[test]
    fn replay_matches_stepwise_run_bitwise() {
        for platform in [Platform::GpuSimd, Platform::Sma3, Platform::TpuHost] {
            let exec = Executor::new(platform);
            let net = zoo::mask_rcnn();
            let plan = exec.plan(&net);
            let a = plan.run();
            let b = exec.run(&net);
            assert_eq!(a.total_ms.to_bits(), b.total_ms.to_bits());
            assert_eq!(a.gemm_ms.to_bits(), b.gemm_ms.to_bits());
            assert_eq!(a.irregular_ms.to_bits(), b.irregular_ms.to_bits());
            assert_eq!(a.transfer_ms.to_bits(), b.transfer_ms.to_bits());
            assert_eq!(a.sm_cycles, b.sm_cycles);
            assert_eq!(a.mem, b.mem);
            assert_eq!(a.layers.len(), b.layers.len());
        }
    }

    #[test]
    fn plan_metadata_is_frozen() {
        let exec = Executor::builder(Platform::Sma2).batch(16).build();
        let net = zoo::alexnet();
        let plan = exec.try_plan(&net).unwrap();
        assert_eq!(plan.platform(), Platform::Sma2);
        assert_eq!(plan.network(), "AlexNet");
        assert_eq!(plan.layer_count(), net.layers().len());
        assert_eq!(plan.layer_count(), plan.run().layers.len());
        assert!(plan.total_ms() > 0.0);
        // total_ms() agrees with a replay up to summation order.
        assert!((plan.total_ms() - plan.run().total_ms).abs() < 1e-9);
    }

    #[test]
    fn skipped_crf_handoff_survives_planning() {
        // DeepLab without post-processing: on-die backends drop the CRF
        // entirely; the TPU still pays the hand-off transfer.
        let net = zoo::deeplab();
        let on_die = Executor::builder(Platform::Sma3)
            .postprocessing(false)
            .build()
            .plan(&net);
        assert!(on_die
            .steps()
            .iter()
            .all(|s| matches!(s, PlannedStep::Layer { .. })));
        let tpu = Executor::builder(Platform::TpuHost)
            .postprocessing(false)
            .build()
            .plan(&net);
        assert!(tpu
            .steps()
            .iter()
            .any(|s| matches!(s, PlannedStep::CrfHandoff { .. })));
        assert!(tpu.run().transfer_ms > 0.0);
    }

    #[test]
    fn mem_bytes_tracks_steps_not_batch() {
        let net = zoo::vgg_a();
        let b1 = Executor::builder(Platform::Sma3)
            .batch(1)
            .build()
            .plan(&net);
        let b16 = Executor::builder(Platform::Sma3)
            .batch(16)
            .build()
            .plan(&net);
        assert!(b1.mem_bytes() > 0);
        // Batch stacking scales shapes inside steps, not the step
        // count, so residency is batch-invariant.
        assert_eq!(b1.mem_bytes(), b16.mem_bytes());
        // More layers means more resident bytes.
        let small = Executor::new(Platform::Sma3).plan(&zoo::alexnet());
        let large = Executor::new(Platform::Sma3).plan(&zoo::googlenet());
        assert!(large.mem_bytes() > small.mem_bytes());
    }

    #[test]
    fn replays_are_idempotent() {
        let plan = Executor::kernel_study(Platform::GpuTensorCore).plan(&zoo::googlenet());
        let first = plan.run();
        for _ in 0..3 {
            let again = plan.run();
            assert_eq!(first.total_ms.to_bits(), again.total_ms.to_bits());
            assert_eq!(first.layers.len(), again.layers.len());
        }
    }
}
