//! Platform runtime: maps whole networks onto the competing architectures
//! and drives the end-to-end application study.
//!
//! This is where the paper's system-level comparisons are assembled:
//!
//! * [`Platform`] — GPU-SIMD, 4-TC, 2-SMA, 3-SMA and TPU+host;
//! * [`Executor`] — runs a [`sma_models::Network`] on a platform,
//!   scheduling GEMM layers on the platform's matrix engine and the
//!   GEMM-incompatible layers where each platform can execute them
//!   (SIMD mode for the GPU family; lowering or host-CPU fallback for the
//!   TPU, with the transfer costs of Fig. 3);
//! * [`autonomous`] — the autonomous-driving pipeline of §V-C
//!   (DET/TRA/LOC with detection-frame skipping), including the dynamic
//!   resource reallocation only temporal integration allows: on non-DET
//!   frames the SMA units fold back into SIMD lanes and accelerate the
//!   localisation work, while the spatially integrated TC sits idle.

#![deny(missing_docs)]

pub mod autonomous;
pub mod executor;
pub mod platform;

pub use autonomous::{DrivingPipeline, FrameSchedule};
pub use executor::{Executor, LayerProfile, NetworkProfile};
pub use platform::Platform;
