//! Platform runtime: maps whole networks onto the competing architectures
//! and drives the end-to-end application study.
//!
//! This is where the paper's system-level comparisons are assembled:
//!
//! * [`backend`] — the open execution API: one object-safe [`Backend`]
//!   trait covering GEMM, irregular work and host transfers, with the
//!   seven evaluated architectures as cached implementations and room
//!   for more (see the module docs for a worked eighth backend, and
//!   `docs/ADDING_A_BACKEND.md` for the full recipe);
//! * [`Platform`] — the thin serialisable keys (GPU-SIMD, 4-TC, 2-SMA,
//!   3-SMA, TPU+host, plus the reconfigurable-systolic ArrayFlex and
//!   FlexSA), each resolving to its shared backend via
//!   [`Platform::backend`];
//! * [`Executor`] — runs a [`sma_models::Network`] by dispatching every
//!   layer through `dyn Backend`, configured with a builder
//!   (`Executor::builder(p).batch(16).framework_ms(0.0).build()`);
//! * [`plan`] — the compile-once/replay-many layer: [`Executor::plan`]
//!   resolves every layer once into a [`NetworkPlan`] whose
//!   [`NetworkPlan::run`] replays the profile with no locking and no
//!   recomputation (the serving/sweep hot path), plus the sweep-scale
//!   machinery above it — [`PlanFamily`] (batch-incremental
//!   compilation) and [`PlanArena`] (one shared step region for
//!   thousands of plans);
//! * [`serve`] — the simulated multi-shard serving layer above the
//!   plans: seeded open-loop load generation, pluggable batching
//!   policies and shard placement strategies, all on a deterministic
//!   simulated clock;
//! * [`autonomous`] — the autonomous-driving pipeline of §V-C
//!   (DET/TRA/LOC with detection-frame skipping), including the dynamic
//!   resource reallocation only temporal integration allows: on non-DET
//!   frames the SMA units fold back into SIMD lanes and accelerate the
//!   localisation work, while the spatially integrated TC sits idle.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod autonomous;
pub mod backend;
pub mod executor;
pub mod plan;
pub mod platform;
pub mod serve;

pub use autonomous::{DrivingPipeline, FrameSchedule};
pub use backend::{
    Backend, CacheStats, ExecPath, GemmCache, IrregularEstimate, IrregularOp, IrregularWork,
    RuntimeError, SimdBackend, SmaBackend, TensorCoreBackend, TpuHostBackend,
};
pub use executor::{Executor, ExecutorBuilder, LayerProfile, NetworkProfile};
pub use plan::{ArenaPlan, NetworkPlan, PlanArena, PlanFamily, PlannedStep, TemplateStep};
pub use platform::Platform;
