//! Network-on-platform execution profiles.

use crate::backend::{Backend, IrregularWork, RuntimeError, CRF_HANDOFF_BYTES};
use crate::plan::{NetworkPlan, PlanFamily, PlannedStep, TemplateStep};
use crate::platform::Platform;
use serde::{Deserialize, Serialize};
use sma_energy::{EnergyBreakdown, EnergyModel};
use sma_mem::MemStats;
use sma_models::{Layer, LayerWork, Network};
use std::sync::Arc;

pub use crate::backend::ExecPath;

/// Per-layer timing record.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LayerProfile {
    /// Index in the network's layer table.
    pub index: usize,
    /// Milliseconds on the platform.
    pub ms: f64,
    /// Which execution path ran it.
    pub path: ExecPath,
}

/// Complete profile of one network inference on one platform.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NetworkProfile {
    /// Platform executed on.
    pub platform: Platform,
    /// Network name (shared with the [`Network`], not copied per run).
    pub network: Arc<str>,
    /// Total milliseconds.
    pub total_ms: f64,
    /// Milliseconds in GEMM-compatible layers.
    pub gemm_ms: f64,
    /// Milliseconds in irregular layers.
    pub irregular_ms: f64,
    /// Milliseconds of host transfers (offload backends only).
    pub transfer_ms: f64,
    /// Per-layer records.
    pub layers: Vec<LayerProfile>,
    /// Aggregate access ledger (GPU-family backends).
    pub mem: MemStats,
    /// Occupied SM-cycles (for constant-power accounting).
    pub sm_cycles: u64,
}

impl NetworkProfile {
    /// An all-zero profile with the per-layer table pre-sized.
    pub(crate) fn empty(platform: Platform, network: Arc<str>, layer_capacity: usize) -> Self {
        NetworkProfile {
            platform,
            network,
            total_ms: 0.0,
            gemm_ms: 0.0,
            irregular_ms: 0.0,
            transfer_ms: 0.0,
            layers: Vec::with_capacity(layer_capacity),
            mem: MemStats::default(),
            sm_cycles: 0,
        }
    }

    /// Energy estimate of the profile under a model.
    #[must_use]
    pub fn energy(&self, model: &EnergyModel) -> EnergyBreakdown {
        model.estimate_with_runtime(&self.mem, self.sm_cycles)
    }
}

/// Runs networks on platforms, dispatching every layer through the
/// platform's [`Backend`].
///
/// # Example
///
/// ```
/// use sma_runtime::{Executor, Platform};
/// use sma_models::zoo;
///
/// let exec = Executor::builder(Platform::Sma3)
///     .batch(1)
///     .postprocessing(true)
///     .build();
/// let profile = exec.run(&zoo::alexnet());
/// assert!(profile.total_ms > 0.0);
/// assert!(profile.gemm_ms > profile.irregular_ms);
/// ```
#[derive(Debug, Clone)]
pub struct Executor {
    platform: Platform,
    backend: Arc<dyn Backend>,
    framework_ms_per_layer: f64,
    include_postprocessing: bool,
    batch: usize,
}

/// Configures an [`Executor`].
///
/// Created by [`Executor::builder`]; defaults to the paper's end-to-end
/// latency setup (batch 1, 0.3 ms/layer framework glue, post-processing
/// included).
#[derive(Debug, Clone)]
pub struct ExecutorBuilder {
    platform: Platform,
    backend: Option<Arc<dyn Backend>>,
    framework_ms_per_layer: f64,
    include_postprocessing: bool,
    batch: usize,
}

impl ExecutorBuilder {
    /// Inference batch size: im2col GEMMs stack along `m`. Fig. 8's
    /// kernel-level comparison runs batch 16 so layer GEMMs reach the
    /// steady-state regions of the engines; the end-to-end latency
    /// studies (Fig. 3/9) run batch 1.
    #[must_use]
    pub fn batch(mut self, batch: usize) -> Self {
        self.batch = batch.max(1);
        self
    }

    /// Per-layer framework dispatch overhead in ms (kernel launch +
    /// framework glue; calibrated against the Fig. 3 end-to-end
    /// numbers). Backends whose
    /// [`Backend::applies_framework_overhead`] is false never pay it.
    #[must_use]
    pub fn framework_ms(mut self, ms: f64) -> Self {
        self.framework_ms_per_layer = ms;
        self
    }

    /// Include post-processing stages (the CRF). Fig. 3 includes them
    /// (reported separately for CRF); Fig. 8's network comparison is the
    /// CNN+head portion only.
    #[must_use]
    pub fn postprocessing(mut self, include: bool) -> Self {
        self.include_postprocessing = include;
        self
    }

    /// Overrides the backend instance — the hook for architectures
    /// beyond the five built-in [`Platform`] keys. The platform key is
    /// kept for labelling/serialisation only.
    #[must_use]
    pub fn backend(mut self, backend: Arc<dyn Backend>) -> Self {
        self.backend = Some(backend);
        self
    }

    /// Builds the executor (resolving the platform's shared backend
    /// unless one was injected).
    #[must_use]
    pub fn build(self) -> Executor {
        Executor {
            platform: self.platform,
            backend: self.backend.unwrap_or_else(|| self.platform.backend()),
            framework_ms_per_layer: self.framework_ms_per_layer,
            include_postprocessing: self.include_postprocessing,
            batch: self.batch,
        }
    }
}

impl Executor {
    /// Starts configuring an executor for a platform.
    #[must_use]
    pub fn builder(platform: Platform) -> ExecutorBuilder {
        ExecutorBuilder {
            platform,
            backend: None,
            framework_ms_per_layer: 0.3,
            include_postprocessing: true,
            batch: 1,
        }
    }

    /// An executor with the end-to-end defaults (batch 1, Fig. 3 setup).
    #[must_use]
    pub fn new(platform: Platform) -> Self {
        Self::builder(platform).build()
    }

    /// Fig.-8 configuration: kernel-level comparison at batch 16, no
    /// framework glue, CNN+head portion only.
    #[must_use]
    pub fn kernel_study(platform: Platform) -> Self {
        Self::builder(platform)
            .batch(16)
            .framework_ms(0.0)
            .postprocessing(false)
            .build()
    }

    /// The platform key.
    #[must_use]
    pub const fn platform(&self) -> Platform {
        self.platform
    }

    /// The backend the executor dispatches through.
    #[must_use]
    pub fn backend(&self) -> &Arc<dyn Backend> {
        &self.backend
    }

    /// The configured inference batch size.
    #[must_use]
    pub const fn batch(&self) -> usize {
        self.batch
    }

    /// A copy of this executor at a different batch size, keeping the
    /// backend instance and every other setting. The serving layer uses
    /// this to compile one [`NetworkPlan`] per dynamic batch size
    /// without re-resolving the backend.
    #[must_use]
    pub fn with_batch(&self, batch: usize) -> Executor {
        let mut executor = self.clone();
        executor.batch = batch.max(1);
        executor
    }

    /// Profiles one inference.
    ///
    /// # Panics
    ///
    /// Panics if the backend rejects a layer
    /// ([`Backend::gemm`] returning an error); use [`Executor::try_run`]
    /// to handle that as a value. The five built-in backends accept every
    /// zoo layer.
    #[must_use]
    pub fn run(&self, network: &Network) -> NetworkProfile {
        self.try_run(network)
            // sma-lint: allow(no-panic) — documented panic; try_run is
            // the fallible form and the message routes callers to it.
            .expect("backend rejected a layer; use try_run for fallible dispatch")
    }

    /// Profiles one inference, surfacing backend rejections.
    ///
    /// # Errors
    ///
    /// Propagates [`RuntimeError`] from the backend (e.g. a GEMM-only
    /// engine refusing a shape).
    pub fn try_run(&self, network: &Network) -> Result<NetworkProfile, RuntimeError> {
        let mut profile =
            NetworkProfile::empty(self.platform, network.name_shared(), network.layers().len());
        for (index, layer) in network.layers().iter().enumerate() {
            if let Some(step) = self.step_for(index, layer)? {
                step.apply(&mut profile);
            }
        }
        Ok(profile)
    }

    /// Compiles the network into a [`NetworkPlan`]: resolves every
    /// layer's work once, applies the batch stacking, pre-warms the
    /// backend's GEMM cache and freezes the per-layer contributions.
    /// [`NetworkPlan::run`] then replays the profile without touching
    /// the backend (no locks, no recomputation).
    ///
    /// # Panics
    ///
    /// Panics if the backend rejects a layer; use [`Executor::try_plan`]
    /// to handle that as a value.
    #[must_use]
    pub fn plan(&self, network: &Network) -> NetworkPlan {
        self.try_plan(network)
            // sma-lint: allow(no-panic) — documented panic; try_plan is
            // the fallible form and the message routes callers to it.
            .expect("backend rejected a layer; use try_plan for fallible compilation")
    }

    /// Compiles the network into a [`NetworkPlan`], surfacing backend
    /// rejections.
    ///
    /// # Errors
    ///
    /// Propagates [`RuntimeError`] from the backend (e.g. a GEMM-only
    /// engine refusing a shape).
    pub fn try_plan(&self, network: &Network) -> Result<NetworkPlan, RuntimeError> {
        let mut steps = Vec::with_capacity(network.layers().len());
        for (index, layer) in network.layers().iter().enumerate() {
            if let Some(step) = self.step_for(index, layer)? {
                steps.push(step);
            }
        }
        Ok(NetworkPlan::new(
            self.platform,
            network.name_shared(),
            steps,
        ))
    }

    /// Compiles the batch-*independent* template of a network once: a
    /// [`PlanFamily`] from which [`PlanFamily::plan`] derives the plan
    /// for any batch size by rewriting only the batch-dependent GEMM
    /// steps. The executor's own batch setting is irrelevant here — the
    /// family leaves the batch dimension symbolic.
    ///
    /// Compilation itself is infallible (backend GEMM dispatch is
    /// deferred to derivation); derivation surfaces
    /// [`RuntimeError`] through [`PlanFamily::try_plan`].
    #[must_use]
    pub fn plan_family(&self, network: &Network) -> PlanFamily {
        let mut template = Vec::with_capacity(network.layers().len());
        for (index, layer) in network.layers().iter().enumerate() {
            if let Some(step) = self.template_for(index, layer) {
                template.push(step);
            }
        }
        PlanFamily::new(
            self.platform,
            Arc::clone(&self.backend),
            network.name_shared(),
            template,
        )
    }

    /// Resolves one layer into its frozen contribution, dispatching
    /// through the backend. `None` for a stage the configuration skips
    /// outright (an excluded CRF on an on-die backend).
    ///
    /// Both [`Executor::try_run`] and [`Executor::try_plan`] go through
    /// this — and both fold the result with [`PlannedStep::apply`] — so
    /// plans replay bit-identically to step-by-step runs. The layer
    /// resolution itself is [`Executor::template_for`] followed by
    /// [`TemplateStep::instantiate`] at this executor's batch size, the
    /// same two calls [`Executor::plan_family`] splits across
    /// family-compile and batch-derive time — which is what pins
    /// family-derived plans bit-identical to from-scratch compilation.
    fn step_for(&self, index: usize, layer: &Layer) -> Result<Option<PlannedStep>, RuntimeError> {
        match self.template_for(index, layer) {
            None => Ok(None),
            Some(template) => template
                .instantiate(self.backend.as_ref(), self.batch)
                .map(Some),
        }
    }

    /// Resolves one layer into its batch-independent template step:
    /// everything except the GEMM batch stacking and the backend's GEMM
    /// dispatch, which [`TemplateStep::instantiate`] performs per batch
    /// size.
    fn template_for(&self, index: usize, layer: &Layer) -> Option<TemplateStep> {
        if !self.include_postprocessing && matches!(layer, Layer::Crf { .. }) {
            // The CRF *compute* is reported separately (paper §II-B),
            // but offload backends still pay the hand-off transfer —
            // their pipeline cannot produce the final output without
            // the host. On-die backends price the transfer at zero.
            let transfer = self.backend.transfer_ms(CRF_HANDOFF_BYTES);
            return (transfer > 0.0).then_some(TemplateStep::Fixed(PlannedStep::CrfHandoff {
                transfer_ms: transfer,
            }));
        }
        let step = match layer.work() {
            LayerWork::Gemm(shape) => {
                let glue = if self.backend.applies_framework_overhead() {
                    self.framework_ms_per_layer
                } else {
                    0.0
                };
                TemplateStep::Gemm { index, shape, glue }
            }
            LayerWork::Irregular { .. } => {
                // During irregular phases of dependent single-network
                // inference the substrate runs its baseline SIMD
                // lanes (boost 1.0); the SMA units' extra SIMD
                // capacity is exploited by the *autonomous*
                // scheduler, which raises the boost itself.
                let work = IrregularWork::from_layer(layer)
                    // sma-lint: allow(no-panic) — from_layer is Some
                    // exactly when the work is irregular, which this
                    // match arm just established.
                    .expect("irregular LayerWork implies irregular layer");
                let est = self.backend.irregular(work);
                TemplateStep::Fixed(PlannedStep::Layer {
                    index,
                    ms: est.time_ms,
                    path: est.path,
                    mem: est.mem,
                    sm_cycles: est.sm_cycles,
                    transfer_ms: est.transfer_ms,
                })
            }
        };
        Some(step)
    }
}

#[cfg(test)]
mod tests {
    // Exact float equality in these tests asserts bit-reproducibility
    // of exactly-representable values; an epsilon would weaken them.
    #![allow(clippy::float_cmp)]

    use super::*;
    use sma_models::zoo;

    #[test]
    fn platform_ordering_on_regular_models() {
        // Fig. 8 ordering: SIMD slowest, then 4-TC, 2-SMA, 3-SMA.
        for net in [zoo::alexnet(), zoo::vgg_a(), zoo::googlenet()] {
            let times: Vec<f64> = Platform::gpu_family()
                .iter()
                .map(|&p| Executor::new(p).run(&net).total_ms)
                .collect();
            assert!(
                times[0] > times[1] && times[1] > times[2] && times[2] > times[3],
                "{}: {times:?}",
                net.name()
            );
        }
    }

    #[test]
    fn iso_area_speedups_in_paper_band() {
        // Fig. 8 (top): 4-TC ≈4.4-4.6×, 3-SMA ≈6.9-8.4× over SIMD,
        // network portion only (CRF excluded).
        for net in zoo::table2_models() {
            let base = Executor::kernel_study(Platform::GpuSimd).run(&net).total_ms;
            let tc = Executor::kernel_study(Platform::GpuTensorCore);
            let sma3 = Executor::kernel_study(Platform::Sma3);
            let s_tc = base / tc.run(&net).total_ms;
            let s_sma3 = base / sma3.run(&net).total_ms;
            assert!(
                (3.2..5.4).contains(&s_tc),
                "{}: 4-TC speedup {s_tc:.2}",
                net.name()
            );
            assert!(
                (5.5..9.2).contains(&s_sma3),
                "{}: 3-SMA speedup {s_sma3:.2}",
                net.name()
            );
            assert!(
                s_sma3 > s_tc * 1.35,
                "{}: 3-SMA must clearly beat 4-TC",
                net.name()
            );
        }
    }

    #[test]
    fn tpu_loses_on_hybrid_models() {
        // Fig. 3: the TPU beats the GPU on pure CNNs but loses end-to-end
        // on Mask R-CNN (1.75×) and DeepLab (1.98×).
        let gpu = Executor::new(Platform::GpuSimd);
        let tpu_exec = Executor::new(Platform::TpuHost);

        let mr = zoo::mask_rcnn();
        let ratio_mr = tpu_exec.run(&mr).total_ms / gpu.run(&mr).total_ms;
        assert!(
            (1.3..2.6).contains(&ratio_mr),
            "Mask R-CNN TPU/GPU {ratio_mr:.2}"
        );

        // DeepLab is compared with the CRF reported separately (as the
        // paper does: "we separate the CRF time from the overall
        // execution time").
        let dl = zoo::deeplab();
        let gpu_np = Executor::builder(Platform::GpuSimd)
            .postprocessing(false)
            .build();
        let tpu_np = Executor::builder(Platform::TpuHost)
            .postprocessing(false)
            .build();
        let ratio_dl = tpu_np.run(&dl).total_ms / gpu_np.run(&dl).total_ms;
        assert!(
            (1.3..2.6).contains(&ratio_dl),
            "DeepLab TPU/GPU {ratio_dl:.2}"
        );

        // CRF: CPU ≈10× slower than GPU (Fig. 3 bottom: 555 vs 52 ms).
        use sma_models::{Layer, LayerWork};
        let crf = Layer::Crf {
            pixels: 513 * 513,
            classes: 21,
            iterations: 10,
        };
        let LayerWork::Irregular { flops, bytes, .. } = crf.work() else {
            panic!()
        };
        let cpu_ms = sma_accel::CpuModel::xeon_core().irregular_ms(flops, bytes);
        assert!(
            (8.0..14.0).contains(&(cpu_ms / 52.0)),
            "CRF CPU {cpu_ms:.0} ms"
        );

        // …while on a pure CNN the TPU wins (>1.6× on GEMM per §II-B).
        let vgg = zoo::vgg_a();
        let ratio_vgg = tpu_exec.run(&vgg).total_ms / gpu.run(&vgg).total_ms;
        assert!(ratio_vgg < 1.0, "VGG TPU/GPU {ratio_vgg:.2}");
    }

    #[test]
    fn transfer_appears_only_on_tpu() {
        let dl = zoo::deeplab();
        let t = Executor::new(Platform::TpuHost).run(&dl);
        assert!(t.transfer_ms > 0.0);
        let g = Executor::new(Platform::GpuSimd).run(&dl);
        assert_eq!(g.transfer_ms, 0.0);
    }

    #[test]
    fn energy_ordering_matches_fig8() {
        // Fig. 8 (bottom): 2-SMA ≈0.88×, 3-SMA ≈0.77× of 4-TC.
        let model = EnergyModel::volta();
        let net = zoo::vgg_a();
        let run = |p: Platform| {
            let prof = Executor::kernel_study(p).run(&net);
            prof.energy(&model).total()
        };
        let tc = run(Platform::GpuTensorCore);
        let sma2 = run(Platform::Sma2);
        let sma3 = run(Platform::Sma3);
        let r2 = sma2 / tc;
        let r3 = sma3 / tc;
        assert!((0.70..0.97).contains(&r2), "2-SMA energy ratio {r2:.3}");
        assert!((0.60..0.90).contains(&r3), "3-SMA energy ratio {r3:.3}");
        assert!(r3 < r2, "3-SMA must consume less than 2-SMA");
    }

    #[test]
    fn postprocessing_toggle_changes_deeplab_only() {
        let with = Executor::builder(Platform::GpuSimd)
            .postprocessing(true)
            .build();
        let without = Executor::builder(Platform::GpuSimd)
            .postprocessing(false)
            .build();
        let dl = zoo::deeplab();
        assert!(with.run(&dl).total_ms > without.run(&dl).total_ms + 30.0);
        let ax = zoo::alexnet();
        assert!((with.run(&ax).total_ms - without.run(&ax).total_ms).abs() < 1e-9);
    }

    #[test]
    fn builder_defaults_match_new() {
        let a = Executor::new(Platform::Sma3);
        let b = Executor::builder(Platform::Sma3).build();
        let net = zoo::alexnet();
        assert_eq!(
            a.run(&net).total_ms.to_bits(),
            b.run(&net).total_ms.to_bits()
        );
    }

    #[test]
    fn executor_dispatches_through_injected_backend() {
        // A custom backend reaches run() without any Platform variant.
        use crate::backend::{Backend, GemmCache, IrregularEstimate, IrregularWork, RuntimeError};
        use sma_core::model::GemmEstimate;
        use sma_core::{SmaConfig, SmaGemmModel};
        use sma_sim::GpuConfig;
        use sma_tensor::GemmShape;

        #[derive(Debug)]
        struct Doubled {
            gpu: GpuConfig,
            model: SmaGemmModel,
            cache: GemmCache,
        }
        impl Backend for Doubled {
            fn name(&self) -> &'static str {
                "2x-SMA"
            }
            fn gemm(&self, shape: GemmShape) -> Result<GemmEstimate, RuntimeError> {
                Ok(self.cache.get_or_compute(shape, || {
                    let mut e = self.model.estimate(shape);
                    e.time_ms *= 2.0;
                    e
                }))
            }
            fn irregular(&self, work: IrregularWork) -> IrregularEstimate {
                crate::backend::gpu_irregular_estimate(&self.gpu, &work)
            }
            fn transfer_ms(&self, _bytes: u64) -> f64 {
                0.0
            }
            fn simd_mode_boost(&self) -> f64 {
                3.0
            }
        }

        // Compare without framework glue so the doubled estimates are
        // the only difference.
        let custom = Executor::builder(Platform::Sma3)
            .framework_ms(0.0)
            .backend(std::sync::Arc::new(Doubled {
                gpu: GpuConfig::volta(),
                model: SmaGemmModel::new(SmaConfig::iso_area_3sma()),
                cache: GemmCache::default(),
            }))
            .build();
        let stock = Executor::builder(Platform::Sma3).framework_ms(0.0).build();
        let net = zoo::alexnet();
        let (c, s) = (custom.run(&net).gemm_ms, stock.run(&net).gemm_ms);
        assert!((c / s - 2.0).abs() < 1e-9, "custom {c} vs stock {s}");
    }
}
