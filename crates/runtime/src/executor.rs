//! Network-on-platform execution profiles.

use crate::platform::{gpu_irregular_ledger, gpu_irregular_ms, tpu, Platform};
use serde::{Deserialize, Serialize};
use sma_accel::TpuLowering;
use sma_energy::{EnergyBreakdown, EnergyModel};
use sma_mem::MemStats;
use sma_models::{Layer, LayerWork, Network};
use sma_sim::GpuConfig;

/// Bytes shipped to the host for the CRF stage: FP32 unaries (21×513²),
/// the softmax maps and the full-resolution guide image.
const CRF_HANDOFF_BYTES: u64 = 45 << 20;

/// Per-layer timing record.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LayerProfile {
    /// Index in the network's layer table.
    pub index: usize,
    /// Milliseconds on the platform.
    pub ms: f64,
    /// Which execution path ran it.
    pub path: ExecPath,
}

/// Where a layer executed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ExecPath {
    /// The platform's matrix engine (systolic array / TC / SIMD GEMM).
    MatrixEngine,
    /// GPU SIMD mode (programmable lanes).
    SimdMode,
    /// Lowered onto the TPU's native ops.
    TpuLowered,
    /// Shipped to the host CPU (with transfer cost).
    HostCpu,
}

/// Complete profile of one network inference on one platform.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NetworkProfile {
    /// Platform executed on.
    pub platform: Platform,
    /// Network name.
    pub network: String,
    /// Total milliseconds.
    pub total_ms: f64,
    /// Milliseconds in GEMM-compatible layers.
    pub gemm_ms: f64,
    /// Milliseconds in irregular layers.
    pub irregular_ms: f64,
    /// Milliseconds of host transfers (TPU platform only).
    pub transfer_ms: f64,
    /// Per-layer records.
    pub layers: Vec<LayerProfile>,
    /// Aggregate access ledger (GPU-family platforms).
    pub mem: MemStats,
    /// Occupied SM-cycles (for constant-power accounting).
    pub sm_cycles: u64,
}

impl NetworkProfile {
    /// Energy estimate of the profile under a model.
    #[must_use]
    pub fn energy(&self, model: &EnergyModel) -> EnergyBreakdown {
        model.estimate_with_runtime(&self.mem, self.sm_cycles)
    }
}

/// Runs networks on platforms.
///
/// # Example
///
/// ```
/// use sma_runtime::{Executor, Platform};
/// use sma_models::zoo;
///
/// let exec = Executor::new(Platform::Sma3);
/// let profile = exec.run(&zoo::alexnet());
/// assert!(profile.total_ms > 0.0);
/// assert!(profile.gemm_ms > profile.irregular_ms);
/// ```
#[derive(Debug, Clone)]
pub struct Executor {
    platform: Platform,
    gpu: GpuConfig,
    /// Per-layer framework dispatch overhead on the GPU family, in ms
    /// (kernel launch + framework glue; calibrated against the Fig. 3
    /// end-to-end numbers).
    pub framework_ms_per_layer: f64,
    /// Include post-processing stages (the CRF). Fig. 3 includes them
    /// (reported separately for CRF); Fig. 8's network comparison is the
    /// CNN+head portion only.
    pub include_postprocessing: bool,
    /// Inference batch size: im2col GEMMs stack along `m`. Fig. 8's
    /// kernel-level comparison runs batch 16 so layer GEMMs reach the
    /// steady-state regions of the engines (GPGPU-Sim-style evaluation);
    /// the end-to-end latency studies (Fig. 3/9) run batch 1.
    pub batch: usize,
}

impl Executor {
    /// Creates an executor for a platform.
    #[must_use]
    pub fn new(platform: Platform) -> Self {
        Executor {
            platform,
            gpu: GpuConfig::volta(),
            framework_ms_per_layer: 0.3,
            include_postprocessing: true,
            batch: 1,
        }
    }

    /// Fig.-8 configuration: kernel-level comparison at batch 16, no
    /// framework glue, CNN+head portion only.
    #[must_use]
    pub fn kernel_study(platform: Platform) -> Self {
        let mut e = Self::new(platform);
        e.framework_ms_per_layer = 0.0;
        e.include_postprocessing = false;
        e.batch = 16;
        e
    }

    /// The platform.
    #[must_use]
    pub const fn platform(&self) -> Platform {
        self.platform
    }

    /// Profiles one inference.
    #[must_use]
    pub fn run(&self, network: &Network) -> NetworkProfile {
        let mut profile = NetworkProfile {
            platform: self.platform,
            network: network.name().to_string(),
            total_ms: 0.0,
            gemm_ms: 0.0,
            irregular_ms: 0.0,
            transfer_ms: 0.0,
            layers: Vec::new(),
            mem: MemStats::default(),
            sm_cycles: 0,
        };

        for (index, layer) in network.layers().iter().enumerate() {
            if !self.include_postprocessing && matches!(layer, Layer::Crf { .. }) {
                // The CRF *compute* is reported separately (paper §II-B),
                // but the TPU still pays the hand-off transfer — its
                // pipeline cannot produce the final output without the
                // host.
                if self.platform == Platform::TpuHost {
                    let transfer = tpu().transfer_ms(CRF_HANDOFF_BYTES);
                    profile.transfer_ms += transfer;
                    profile.total_ms += transfer;
                    profile.irregular_ms += transfer;
                }
                continue;
            }
            let (ms, path) = match layer.work() {
                LayerWork::Gemm(mut shape) => {
                    shape.m *= self.batch.max(1);
                    if self.platform == Platform::TpuHost {
                        (tpu().estimate_gemm(shape).time_ms, ExecPath::MatrixEngine)
                    } else {
                        let est = self.platform.gemm(shape);
                        profile.mem += est.mem;
                        profile.sm_cycles += est.sm_cycles;
                        (
                            est.time_ms + self.framework_ms_per_layer,
                            ExecPath::MatrixEngine,
                        )
                    }
                }
                LayerWork::Irregular {
                    flops,
                    bytes,
                    parallel_fraction,
                    memory_efficiency,
                } => match self.platform {
                    Platform::TpuHost => self.tpu_irregular(layer, flops, bytes, &mut profile),
                    _ => {
                        let ms = gpu_irregular_ms(
                            &self.gpu,
                            flops,
                            bytes,
                            parallel_fraction,
                            memory_efficiency,
                            // During irregular phases the GPU family runs
                            // its baseline SIMD lanes; the SMA units'
                            // extra SIMD capacity is used by the
                            // *autonomous* scheduler, not single-network
                            // inference (the layers are dependent).
                            1.0,
                        );
                        profile.mem += gpu_irregular_ledger(flops, bytes);
                        profile.sm_cycles += self
                            .gpu
                            .cycles_for_seconds(ms / 1e3)
                            * u64::from(self.gpu.sms);
                        (ms, ExecPath::SimdMode)
                    }
                },
            };
            match path {
                ExecPath::MatrixEngine => profile.gemm_ms += ms,
                ExecPath::SimdMode | ExecPath::TpuLowered => profile.irregular_ms += ms,
                ExecPath::HostCpu => profile.irregular_ms += ms,
            }
            profile.total_ms += ms;
            profile.layers.push(LayerProfile { index, ms, path });
        }
        profile
    }

    /// TPU path for an irregular layer: lower it if the compiler can,
    /// otherwise ship the tensors to the host CPU.
    fn tpu_irregular(
        &self,
        layer: &Layer,
        flops: u64,
        bytes: u64,
        profile: &mut NetworkProfile,
    ) -> (f64, ExecPath) {
        let t = tpu();
        match *layer {
            Layer::Nms { boxes } => {
                // One dispatched sweep per selected box (TF on-device NMS).
                let lowered = TpuLowering::nms(boxes, boxes.min(1000));
                (lowered.time_on_tpu(&t), ExecPath::TpuLowered)
            }
            Layer::RoiAlign { rois, pooled, channels } => {
                // The avg-pool rewrite reads the whole enclosing window
                // (≈24² taps) where the native op needs 4.
                let lowered = TpuLowering::roialign(rois, pooled, channels, 24);
                (lowered.time_on_tpu(&t), ExecPath::TpuLowered)
            }
            Layer::ArgMax { pixels, classes } => {
                let lowered = TpuLowering::argmax(pixels, classes);
                (lowered.time_on_tpu(&t), ExecPath::TpuLowered)
            }
            Layer::Crf { .. } => {
                // Unsupported and un-lowerable: transfer to the host.
                let _ = bytes;
                let transfer = t.transfer_ms(CRF_HANDOFF_BYTES);
                profile.transfer_ms += transfer;
                let cpu = sma_accel::CpuModel::xeon_core();
                (transfer + cpu.irregular_ms(flops, bytes), ExecPath::HostCpu)
            }
            _ => {
                // Pool/elementwise run natively on the vector unit.
                let cycles = (bytes / 4).div_ceil(128);
                let ms = cycles as f64 / (t.config().clock_ghz * 1e9) * 1e3
                    + t.config().dispatch_us * 1e-3;
                (ms, ExecPath::TpuLowered)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sma_models::zoo;

    #[test]
    fn platform_ordering_on_regular_models() {
        // Fig. 8 ordering: SIMD slowest, then 4-TC, 2-SMA, 3-SMA.
        for net in [zoo::alexnet(), zoo::vgg_a(), zoo::googlenet()] {
            let times: Vec<f64> = Platform::gpu_family()
                .iter()
                .map(|&p| Executor::new(p).run(&net).total_ms)
                .collect();
            assert!(
                times[0] > times[1] && times[1] > times[2] && times[2] > times[3],
                "{}: {times:?}",
                net.name()
            );
        }
    }

    #[test]
    fn iso_area_speedups_in_paper_band() {
        // Fig. 8 (top): 4-TC ≈4.4-4.6×, 3-SMA ≈6.9-8.4× over SIMD,
        // network portion only (CRF excluded).
        for net in zoo::table2_models() {
            let base = Executor::kernel_study(Platform::GpuSimd).run(&net).total_ms;
            let tc = Executor::kernel_study(Platform::GpuTensorCore);
            let sma3 = Executor::kernel_study(Platform::Sma3);
            let s_tc = base / tc.run(&net).total_ms;
            let s_sma3 = base / sma3.run(&net).total_ms;
            assert!(
                (3.2..5.4).contains(&s_tc),
                "{}: 4-TC speedup {s_tc:.2}",
                net.name()
            );
            assert!(
                (5.5..9.2).contains(&s_sma3),
                "{}: 3-SMA speedup {s_sma3:.2}",
                net.name()
            );
            assert!(s_sma3 > s_tc * 1.35, "{}: 3-SMA must clearly beat 4-TC", net.name());
        }
    }

    #[test]
    fn tpu_loses_on_hybrid_models() {
        // Fig. 3: the TPU beats the GPU on pure CNNs but loses end-to-end
        // on Mask R-CNN (1.75×) and DeepLab (1.98×).
        let gpu = Executor::new(Platform::GpuSimd);
        let tpu_exec = Executor::new(Platform::TpuHost);

        let mr = zoo::mask_rcnn();
        let ratio_mr = tpu_exec.run(&mr).total_ms / gpu.run(&mr).total_ms;
        assert!(
            (1.3..2.6).contains(&ratio_mr),
            "Mask R-CNN TPU/GPU {ratio_mr:.2}"
        );

        // DeepLab is compared with the CRF reported separately (as the
        // paper does: "we separate the CRF time from the overall
        // execution time").
        let dl = zoo::deeplab();
        let mut gpu_np = Executor::new(Platform::GpuSimd);
        gpu_np.include_postprocessing = false;
        let mut tpu_np = Executor::new(Platform::TpuHost);
        tpu_np.include_postprocessing = false;
        let ratio_dl = tpu_np.run(&dl).total_ms / gpu_np.run(&dl).total_ms;
        assert!((1.3..2.6).contains(&ratio_dl), "DeepLab TPU/GPU {ratio_dl:.2}");

        // CRF: CPU ≈10× slower than GPU (Fig. 3 bottom: 555 vs 52 ms).
        use sma_models::{Layer, LayerWork};
        let crf = Layer::Crf { pixels: 513 * 513, classes: 21, iterations: 10 };
        let LayerWork::Irregular { flops, bytes, .. } = crf.work() else {
            panic!()
        };
        let cpu_ms = sma_accel::CpuModel::xeon_core().irregular_ms(flops, bytes);
        assert!((8.0..14.0).contains(&(cpu_ms / 52.0)), "CRF CPU {cpu_ms:.0} ms");

        // …while on a pure CNN the TPU wins (>1.6× on GEMM per §II-B).
        let vgg = zoo::vgg_a();
        let ratio_vgg = tpu_exec.run(&vgg).total_ms / gpu.run(&vgg).total_ms;
        assert!(ratio_vgg < 1.0, "VGG TPU/GPU {ratio_vgg:.2}");
    }

    #[test]
    fn transfer_appears_only_on_tpu() {
        let dl = zoo::deeplab();
        let t = Executor::new(Platform::TpuHost).run(&dl);
        assert!(t.transfer_ms > 0.0);
        let g = Executor::new(Platform::GpuSimd).run(&dl);
        assert_eq!(g.transfer_ms, 0.0);
    }

    #[test]
    fn energy_ordering_matches_fig8() {
        // Fig. 8 (bottom): 2-SMA ≈0.88×, 3-SMA ≈0.77× of 4-TC.
        let model = EnergyModel::volta();
        let net = zoo::vgg_a();
        let run = |p: Platform| {
            let prof = Executor::kernel_study(p).run(&net);
            prof.energy(&model).total()
        };
        let tc = run(Platform::GpuTensorCore);
        let sma2 = run(Platform::Sma2);
        let sma3 = run(Platform::Sma3);
        let r2 = sma2 / tc;
        let r3 = sma3 / tc;
        assert!((0.70..0.97).contains(&r2), "2-SMA energy ratio {r2:.3}");
        assert!((0.60..0.90).contains(&r3), "3-SMA energy ratio {r3:.3}");
        assert!(r3 < r2, "3-SMA must consume less than 2-SMA");
    }

    #[test]
    fn postprocessing_toggle_changes_deeplab_only() {
        let mut with = Executor::new(Platform::GpuSimd);
        with.include_postprocessing = true;
        let mut without = Executor::new(Platform::GpuSimd);
        without.include_postprocessing = false;
        let dl = zoo::deeplab();
        assert!(with.run(&dl).total_ms > without.run(&dl).total_ms + 30.0);
        let ax = zoo::alexnet();
        assert!((with.run(&ax).total_ms - without.run(&ax).total_ms).abs() < 1e-9);
    }
}
