//! # SMA — Simultaneous Multi-mode Architecture
//!
//! A from-scratch Rust reproduction of *"Balancing Efficiency and
//! Flexibility for DNN Acceleration via Temporal GPU-Systolic Array
//! Integration"* (DAC 2020): an architecture that temporally integrates a
//! systolic execution mode into a GPU's SIMD substrate, switching between
//! the two in-situ with negligible overhead.
//!
//! This facade re-exports the workspace crates:
//!
//! | module | contents |
//! |---|---|
//! | [`tensor`] | matrices, FP16, reference GEMM, im2col, tiling |
//! | [`isa`] | kernel IR incl. the asynchronous `LSMA` instruction |
//! | [`mem`] | banked shared memory, register file, caches, coalescer |
//! | [`systolic`] | cycle-level functional dataflow engines |
//! | [`sim`] | the SM timing simulator and warp schedulers |
//! | [`energy`] | GPUWattch/CACTI-style energy model |
//! | [`core`] | the SMA architecture: units, controller, GEMM mapper |
//! | [`accel`] | TPU / TensorCore / CPU baselines and TPU op lowering |
//! | [`models`] | Table-II model zoo and functional hybrid operators |
//! | [`runtime`] | platform executors, the serving layer, driving study |
//!
//! # Quickstart
//!
//! ```
//! use sma::core::{GemmMapper, SmaConfig};
//! use sma::tensor::{gemm, Matrix};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // Functionally execute a GEMM through the 2-SMA mapping: real values
//! // move through the systolic arrays PE by PE.
//! let a = Matrix::<f32>::random(64, 32, 1);
//! let b = Matrix::<f32>::random(32, 48, 2);
//! let mapped = GemmMapper::new(SmaConfig::iso_flop_2sma()).execute(&a, &b)?;
//! assert!(mapped.result.approx_eq(&gemm::reference(&a, &b)?, 1e-3));
//!
//! // And estimate its performance on the full 80-SM GPU.
//! use sma::core::SmaGemmModel;
//! use sma::tensor::GemmShape;
//! let est = SmaGemmModel::new(SmaConfig::iso_flop_2sma())
//!     .estimate(GemmShape::new(4096, 4096, 4096));
//! assert!(est.efficiency > 0.85);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub use sma_accel as accel;
pub use sma_core as core;
pub use sma_energy as energy;
pub use sma_isa as isa;
pub use sma_mem as mem;
pub use sma_models as models;
pub use sma_runtime as runtime;
pub use sma_sim as sim;
pub use sma_systolic as systolic;
pub use sma_tensor as tensor;
