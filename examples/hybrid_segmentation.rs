//! A miniature DeepLab-style hybrid pipeline, end to end and functional:
//! convolution (via im2col on the systolic mapper) → per-pixel softmax →
//! ArgMax → dense-CRF refinement — then the same network profiled on
//! every platform, reproducing the paper's §II argument that
//! over-specialised accelerators lose on hybrid models.
//!
//! ```sh
//! cargo run --example hybrid_segmentation
//! ```

use sma::core::{GemmMapper, SmaConfig};
use sma::models::ops;
use sma::models::zoo;
use sma::runtime::{Executor, Platform};
use sma::tensor::{im2col, Conv2dParams, Matrix, TensorShape};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- Functional mini-pipeline ---------------------------------------
    // A 16x16 "image" with a bright square; a 3x3 conv producing 2 class
    // maps; CRF cleanup of the thresholded result.
    let (h, w) = (16usize, 16usize);
    let image = Matrix::from_fn(1, h * w, |_, p| {
        let (y, x) = (p / w, p % w);
        let inside = (4..12).contains(&y) && (4..12).contains(&x);
        // Salt-and-pepper sensor noise for the CRF to clean up.
        let noisy = matches!(p % 47, 0);
        match (inside, noisy) {
            (true, false) => 1.0,
            (true, true) => 0.0,
            (false, false) => 0.1,
            (false, true) => 1.2,
        }
    });
    let shape = TensorShape::new(1, h, w);
    let conv = Conv2dParams::new(1, 1, 3, 1, 1);

    // Lower the conv to GEMM and run it on the SMA mapper (real systolic
    // execution), exactly as the paper's stack does via img2col: a single
    // 3x3 mean detector.
    let patches = im2col::im2col(&image, shape, &conv)?;
    let weights = Matrix::from_fn(9, 1, |_, _| 1.0f32 / 9.0);
    let mapper = GemmMapper::new(SmaConfig::iso_area_3sma());
    let mean = mapper.execute(&patches, &weights)?.result; // (h*w) x 1

    // Head: threshold the local mean into 2-class logits (the GEMM path
    // cannot carry a bias, so the head adds it), then softmax.
    let mut scores = Matrix::from_fn(2, h * w, |c, p| {
        let logit = (mean[(p, 0)] - 0.62) * 8.0;
        if c == 1 {
            logit
        } else {
            -logit
        }
    });
    ops::softmax_inplace(&mut scores);
    let labels_raw = ops::argmax(&scores);

    // Mean-field CRF smooths stragglers at the square's border.
    let unary = scores.map(|p: f32| -(p.max(1e-6)).ln());
    let refined = ops::crf_mean_field(&unary, h, w, 5, 2.0);
    let labels = ops::argmax(&refined);

    let inside = labels[8 * w + 8];
    let outside = labels[0];
    println!("functional pipeline: centre pixel class {inside}, corner class {outside}");
    assert_ne!(inside, outside, "the square must be segmented");
    let changed = labels_raw
        .iter()
        .zip(&labels)
        .filter(|(a, b)| a != b)
        .count();
    println!("CRF refinement changed {changed} of {} pixels", h * w);

    // --- Platform comparison on the real DeepLab ------------------------
    println!("\nDeepLab (network portion) across platforms:");
    let net = zoo::deeplab();
    for p in Platform::ALL {
        let exec = Executor::builder(p).postprocessing(false).build();
        let prof = exec.run(&net);
        println!(
            "  {:<9} {:>7.1} ms (gemm {:>6.1} + irregular {:>5.1} + transfer {:>5.1})",
            p.label(),
            prof.total_ms,
            prof.gemm_ms,
            prof.irregular_ms - prof.transfer_ms,
            prof.transfer_ms
        );
    }
    Ok(())
}
