//! The §V-C autonomous-driving study as a runnable scenario: per-platform
//! frame latency against the 100 ms target, then the detection-skipping
//! schedule that exploits SMA's dynamic mode reallocation.
//!
//! ```sh
//! cargo run --example autonomous_driving
//! ```

use sma::runtime::{DrivingPipeline, Platform};

fn main() {
    const TARGET_MS: f64 = 100.0;

    println!("Single-frame latency (DET + TRA + LOC), target {TARGET_MS} ms:\n");
    for p in [Platform::GpuSimd, Platform::GpuTensorCore, Platform::Sma3] {
        let pipe = DrivingPipeline::new(p);
        let s = pipe.schedule();
        let frame = pipe.frame_latency_ms();
        println!(
            "  {:<5} DET {:>5.1}  TRA {:>4.1}  LOC {:>4.1}  -> frame {:>6.1} ms  [{}]",
            p.label(),
            s.det_ms,
            s.tra_ms,
            s.loc_ms,
            frame,
            if frame <= TARGET_MS {
                "meets target"
            } else {
                "MISSES target"
            }
        );
    }

    println!("\nDetection every N frames (tracking covers the gaps):\n");
    println!("  N    4-TC ms   3-SMA ms   SMA advantage");
    let tc = DrivingPipeline::new(Platform::GpuTensorCore);
    let sma = DrivingPipeline::new(Platform::Sma3);
    for n in 1..=9 {
        let t = tc.frame_latency_skipping_ms(n);
        let s = sma.frame_latency_skipping_ms(n);
        println!(
            "  {n}    {t:>7.1}   {s:>8.1}   {:>5.1}%",
            (1.0 - s / t) * 100.0
        );
    }

    let s1 = sma.frame_latency_skipping_ms(1);
    let s4 = sma.frame_latency_skipping_ms(4);
    println!(
        "\nWith N = 4, SMA reduces frame latency by {:.0}% (paper: \"almost 50%\"):\n  {:.1} ms -> {:.1} ms",
        (1.0 - s4 / s1) * 100.0,
        s1,
        s4
    );
}
