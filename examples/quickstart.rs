//! Quickstart: run a GEMM through the SMA architecture functionally,
//! verify it against the reference, and estimate performance and energy
//! on the full GPU.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use sma::core::{GemmMapper, SmaConfig, SmaGemmModel};
use sma::energy::EnergyModel;
use sma::tensor::{gemm, GemmShape, Matrix};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- 1. Functional execution ---------------------------------------
    // The mapper tiles C into 128x128 blocks and drives every 8x8
    // Bsubtile through a real semi-broadcast systolic array; values move
    // PE to PE each cycle.
    let a = Matrix::<f32>::random(192, 96, 7);
    let b = Matrix::<f32>::random(96, 160, 11);
    let mapper = GemmMapper::new(SmaConfig::iso_flop_2sma());
    let mapped = mapper.execute(&a, &b)?;
    let expected = gemm::reference(&a, &b)?;
    println!(
        "functional GEMM 192x160x96: max |err| = {:.2e} over {} LSMA ops, {} tiles",
        mapped.result.max_abs_diff(&expected),
        mapped.lsma_ops,
        mapped.tiles,
    );
    assert!(mapped.result.approx_eq(&expected, 1e-3));

    // --- 2. Performance estimate on the 80-SM GPU -----------------------
    let shape = GemmShape::new(4096, 4096, 4096);
    for (name, cfg) in [
        ("2-SMA (iso-FLOP)", SmaConfig::iso_flop_2sma()),
        ("3-SMA (iso-area)", SmaConfig::iso_area_3sma()),
    ] {
        let est = SmaGemmModel::new(cfg).estimate(shape);
        println!(
            "{name}: {shape} in {:.3} ms — {:.1} TFLOPS ({:.1}% of peak)",
            est.time_ms,
            est.tflops,
            est.efficiency * 100.0
        );
    }

    // --- 3. Energy ------------------------------------------------------
    let est = SmaGemmModel::new(SmaConfig::iso_area_3sma()).estimate(shape);
    let energy = EnergyModel::volta().estimate_with_runtime(&est.mem, est.sm_cycles);
    println!(
        "3-SMA energy for {shape}: {:.3} J ({})",
        energy.total_joules(),
        energy
    );
    Ok(())
}
