//! Explore the systolic dataflow design space of paper §III-B: run the
//! same GEMM through the three functional engines, compare their
//! schedules, drain shapes and wire traffic, and verify the §III-B claim
//! that the semi-broadcast feed is conflict-free on the 8 dedicated banks.
//!
//! ```sh
//! cargo run --example dataflow_explorer
//! ```

use sma::core::LsmaOp;
use sma::mem::{BankedConfig, BankedMemory};
use sma::systolic::{
    DataflowKind, OutputStationaryArray, PassTiming, SemiBroadcastArray, SystolicGemm,
    WeightStationaryArray,
};
use sma::tensor::{gemm, GemmShape, Matrix};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (m, k, n) = (128usize, 16usize, 16usize);
    let a = Matrix::<f32>::random(m, k, 21);
    let b = Matrix::<f32>::random(k, n, 22);
    let expected = gemm::reference(&a, &b)?;

    println!("GEMM {m}x{n}x{k} on an 8x8 array, per dataflow:\n");
    println!(
        "  {:<6} {:>8} {:>8} {:>10} {:>12} {:>14}",
        "flow", "cycles", "passes", "util", "PE transfers", "drain shape"
    );

    let run = |name: &str, result: sma::systolic::GemmRun<f32>| {
        assert!(
            result.result.approx_eq(&expected, 1e-3),
            "{name} wrong result"
        );
        let t = &result.trace;
        println!(
            "  {:<6} {:>8} {:>8} {:>9.1}% {:>12} {:>14}",
            name,
            t.cycles,
            t.passes,
            t.utilisation(8) * 100.0,
            t.pe_transfers,
            format!("{:?}", t.c_drain_kind)
                .chars()
                .take(14)
                .collect::<String>(),
        );
    };

    run("SB-WS", SemiBroadcastArray::new(8).gemm(&a, &b)?);
    run("WS", WeightStationaryArray::new(8).gemm(&a, &b)?);
    run("OS", OutputStationaryArray::new(8).gemm(&a, &b)?);

    // The analytical models match the engines cycle for cycle.
    println!("\nAnalytical cycle models (validated against the engines):");
    let shape = GemmShape::new(m, n, k);
    for kind in [
        DataflowKind::SemiBroadcastWeightStationary,
        DataflowKind::WeightStationary,
        DataflowKind::OutputStationary,
    ] {
        let model = PassTiming::new(kind, 8, false);
        println!(
            "  {:<6} {:>8} cycles ({:.1}% utilisation)",
            kind.short_name(),
            model.gemm_cycles(shape),
            model.utilisation(shape) * 100.0
        );
    }

    // §III-B's key property: the skewed semi-broadcast A-feed never
    // conflicts on the unit's 8 dedicated shared-memory banks.
    let op = LsmaOp::new(0, 0, 0, m as u32)?;
    let mut banks = BankedMemory::new(BankedConfig::sma_a_feed_slice());
    for t in 0..(m as u64 + 7) {
        let addrs = op.a_feed_addresses(t, 8);
        if !addrs.is_empty() {
            banks.access(&addrs);
        }
    }
    println!(
        "\nA-feed on 8 banks over {} cycles: {} conflicts (serialisation {:.3}x)",
        banks.accesses(),
        banks.conflict_cycles(),
        banks.serialisation_factor()
    );
    assert_eq!(banks.conflict_cycles(), 0);
    Ok(())
}
